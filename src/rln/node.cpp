#include "rln/node.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <random>
#include <stdexcept>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "rln/keystore.hpp"
#include "waku/message.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {

using chain::Transaction;
using gossipsub::ValidationResult;

namespace {

/// OS entropy for the keystore seal RNG. Deliberately NOT derived from the
/// deterministic node seed: a restarted node re-seeded deterministically
/// would replay the exact salt/nonce stream of its previous life, and with
/// multiple snapshot generations on disk an AEAD nonce reuse under one
/// derived key breaks both confidentiality and the Poly1305 tamper
/// guarantee. Sealed snapshots are documented as non-byte-reproducible, so
/// non-determinism here is free.
std::uint64_t seal_entropy() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

WakuRlnRelayNode::WakuRlnRelayNode(net::Network& network,
                                   chain::Blockchain& chain,
                                   chain::Address contract, NodeConfig config,
                                   std::uint64_t seed)
    : network_(network),
      chain_(chain),
      contract_(contract),
      config_(config),
      rng_(seed),
      seal_rng_(seal_entropy()),
      identity_(Identity::generate(rng_)),
      relay_(network, config.gossip, config.score, seed),
      group_(config.tree_depth, config.tree_mode),
      // Per-node seed for the batch verifiers' RLC weights (further
      // diversified per generation and per shard): senders must not be
      // able to predict another node's weight stream.
      base_validator_seed_(seed ^ 0x52C4A55E9D1ULL),
      shards_(zksnark::rln_keypair(config.tree_depth).vk, group_,
              config.validator, config.shards,
              validator_seed(config.shards.generation)),
      reshard_(config.shards),
      load_tracker_(config.load_tracker),
      tracer_(config.obs.trace),
      recorder_(config.obs.recorder) {
  group_.set_own_identity(identity_);
  // Before the first hook install: every validator container (this one
  // and every reshard/restore rebuild) is wired through
  // install_validator_hooks, which needs the clock resolved.
  setup_observability();
  install_validator_hooks(shards_, /*next_generation=*/false);

  if (!config_.persist_dir.empty()) {
    try {
      state_store_.emplace(config_.persist_dir, config_.persist);
      restore_from_store();
    } catch (...) {
      // The relay registered itself with the network in the member-init
      // list; a restore failure (fail-closed keystore, corrupt store) must
      // not leave a pointer to the about-to-be-destroyed router behind.
      network_.remove_node(relay_.node_id());
      throw;
    }
    state_store_->set_snapshot_provider([this] { return serialize_state(); });
  }
}

void WakuRlnRelayNode::install_validator_hooks(
    shard::ShardedValidator& validator, bool next_generation) {
  // Observed shares exist only in transit — journal them (under the
  // owning shard's WAL tag) the moment any shard's pipeline records one,
  // so a crash cannot blind us to double-signals on any shard. During a
  // cutover the incoming generation's shard ids collide with the outgoing
  // ones, so its mirrors ride a distinct tag.
  // Every container build (initial, reshard next-generation, restore
  // rebuild) funnels through here, so the configured worker-pool shape
  // follows the validator across generations.
  validator.set_parallelism(config_.parallel);
  validator.set_executor_clock(obs_clock_);
  const WalTag tag =
      next_generation ? WalTag::kNullifierNext : WalTag::kNullifier;
  validator.set_observe_hook([this, tag](shard::ShardId shard,
                                         std::uint64_t epoch,
                                         const Fr& nullifier,
                                         const sss::Share& share,
                                         std::uint64_t proof_fp) {
    ByteWriter w;
    w.write_u64(epoch);
    w.write_raw(nullifier.to_bytes_be());
    w.write_raw(share.x.to_bytes_be());
    w.write_raw(share.y.to_bytes_be());
    w.write_u64(proof_fp);
    journal(tag, w.data(), shard);
  });
  for (const shard::ShardId s : validator.subscribed()) {
    ValidationPipeline& pipeline = validator.pipeline(s);
    // Stage-latency sinks, shared across generations of the same shard
    // id (the histogram bundle is address-stable), so a cutover extends
    // a shard's series instead of forking it.
    pipeline.set_telemetry(
        obs_clock_, obs_clock_ != nullptr ? &metrics_for_shard(s) : nullptr);
    // Dual-generation enforcement: while a cutover (or its linger
    // window) is active, every message's rate-limit domain is its
    // OLD-generation shard and both generations' meshes observe into
    // that one shared log — migration can never double a quota.
    pipeline.set_log_selector([this](const WakuMessage& msg) {
      return reshard_.domain_log(msg.content_topic);
    });
    pipeline.set_cutover_observe_hook(
        [this](const WakuMessage& msg, std::uint64_t epoch,
               const Fr& nullifier, const sss::Share& share,
               std::uint64_t proof_fp) {
          const std::optional<shard::ShardId> domain =
              reshard_.domain_of(msg.content_topic);
          if (!domain.has_value()) return;
          ByteWriter w;
          w.write_u64(epoch);
          w.write_raw(nullifier.to_bytes_be());
          w.write_raw(share.x.to_bytes_be());
          w.write_raw(share.y.to_bytes_be());
          w.write_u64(proof_fp);
          journal(WalTag::kCutoverObservation, w.data(), *domain);
        });
  }
}

shard::ShardedValidator* WakuRlnRelayNode::validator_for_generation(
    std::uint32_t generation) {
  if (shards_.map().generation() == generation) return &shards_;
  if (next_shards_ != nullptr &&
      next_shards_->map().generation() == generation) {
    return next_shards_.get();
  }
  return nullptr;
}

void WakuRlnRelayNode::wire_shard(shard::ShardedValidator& validator,
                                  shard::ShardId shard) {
  const std::string topic = validator.map().pubsub_topic(shard);
  const std::uint32_t generation = validator.map().generation();
  // All relayed traffic on this shard funnels through the shard's own
  // staged validation pipeline; with gossip validation batching enabled,
  // whole windows share one RLC-aggregated Groth16 check. Windows are
  // per-topic in the router, so one shard's backlog never delays another
  // shard's flush. The container is resolved by generation at call time:
  // the drop-old swap moves pipelines between containers and a captured
  // reference would dangle.
  relay_.set_batch_validator_topic(
      topic,
      [this, shard, generation](const std::vector<net::NodeId>& froms,
                                const std::vector<net::TimeMs>& received_at,
                                const std::vector<WakuMessage>& messages) {
        shard::ShardedValidator* validator =
            validator_for_generation(generation);
        if (validator == nullptr || !validator->subscribes(shard)) {
          // A mesh of a generation this node no longer runs (straggler
          // traffic after drop-old): drop without penalty.
          return std::vector<ValidationResult>(messages.size(),
                                               ValidationResult::kIgnore);
        }
        // Sampled lifecycle spans: the 1-in-N selected messages get an
        // "rx" event as their window enters this shard's pipeline and a
        // "verdict" event (closing the span on any non-accept) after.
        const bool tracing =
            obs_clock_ != nullptr && tracer_.config().sample_every != 0;
        if (tracing) {
          for (std::size_t i = 0; i < messages.size(); ++i) {
            // traced() first: unsampled messages pay only the key hash,
            // never the detail-string build or the clock read.
            if (!traced(messages[i])) continue;
            // The hop-provenance edge (`from=`) is what lets the
            // cross-node PropagationAssembler rebuild the hop graph.
            trace_event(messages[i], "rx",
                        "node=" + std::to_string(node_id()) +
                            ",shard=" + std::to_string(shard) +
                            ",gen=" + std::to_string(generation) +
                            ",from=" + std::to_string(froms[i]));
          }
        }
        // Route through the container's executor: deterministic mode is
        // the old inline call verbatim; parallel mode runs the window on
        // the shard's worker lane (this callback blocks for the verdicts,
        // so the node's WAL/slash hooks never race the relay).
        const std::vector<ValidationOutcome> outcomes =
            validator->validate_batch(shard, messages, received_at);
        if (tracing) {
          for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (!traced(messages[i])) continue;
            const char* reason = verdict_name(outcomes[i].verdict);
            trace_event(messages[i], "verdict", reason);
            if (outcomes[i].verdict != Verdict::kAccept) {
              trace_finish(messages[i], reason);
            }
          }
        }
        std::vector<ValidationResult> results;
        results.reserve(outcomes.size());
        for (const ValidationOutcome& outcome : outcomes) {
          switch (outcome.verdict) {
            case Verdict::kAccept:
              results.push_back(ValidationResult::kAccept);
              continue;
            case Verdict::kIgnoreEpochGap:
            case Verdict::kIgnoreDuplicate:
              results.push_back(ValidationResult::kIgnore);
              continue;
            case Verdict::kRejectSpam:
              // Double-signal: the recovered sk is slashing material
              // (§III-F). Same-x equivocation yields none to recover.
              if (outcome.recovered_sk.has_value()) {
                trigger_slash(*outcome.recovered_sk);
              }
              results.push_back(ValidationResult::kReject);
              continue;
            case Verdict::kRejectStaleRoot:
              // With windowed validation a proof can go stale while it
              // sits buffered (membership churn between arrival and
              // flush) — not the sender's fault, so drop it without a
              // score penalty. Unbatched validation keeps the strict
              // reject: there the root was stale on arrival.
              results.push_back(config_.gossip.validation_batch_max > 1
                                    ? ValidationResult::kIgnore
                                    : ValidationResult::kReject);
              continue;
            case Verdict::kRejectNoProof:
            case Verdict::kRejectBadProof:
              results.push_back(ValidationResult::kReject);
              continue;
          }
          results.push_back(ValidationResult::kReject);
        }
        return results;
      });

  relay_.subscribe_topic(topic, [this](const WakuMessage& msg) {
    ++stats_.delivered;
    if (traced(msg)) {
      trace_event(msg, "deliver", "node=" + std::to_string(node_id()));
      trace_finish(msg, "deliver");
    }
    if (config_.enable_store) {
      store_.archive(msg, network_.sim().now());
    }
    if (handler_) handler_(msg);
  });
}

void WakuRlnRelayNode::start() {
  started_ = true;
  // One gossipsub mesh + validator per subscribed shard — for BOTH
  // generations when a restored cutover is mid-overlap/drain (the
  // restart resumes the journaled phase, dual-subscription included).
  for (const shard::ShardId shard : shards_.subscribed()) {
    wire_shard(shards_, shard);
  }
  if (next_shards_ != nullptr) {
    for (const shard::ShardId shard : next_shards_->subscribed()) {
      wire_shard(*next_shards_, shard);
    }
  }

  // Root-transition history starts at the current (possibly restored)
  // cursor; transitions applied below during replay accrue into it.
  root_history_floor_ = event_cursor_;
  root_at_floor_ = group_.root();
  root_history_.clear();

  // Durable nodes resume the contract event stream from their replay
  // cursor (everything older is already folded into the restored state);
  // ephemeral nodes keep the historical live-only behaviour.
  if (state_store_.has_value()) {
    chain_.replay_events(event_cursor_,
                         [this](const chain::Event& ev) {
                           handle_chain_event(ev);
                         });
  }
  chain_subscription_ = chain_.subscribe_events(
      [this](const chain::Event& ev) { handle_chain_event(ev); });

  // Hop-direction hook: the router is the only layer that sees which
  // peer an outbound publish frame targets ("fwd") or which peer a
  // duplicate receipt came from ("dup"). Both fire after the local span
  // closed (gossipsub delivers locally before relaying; a duplicate by
  // definition follows the first rx), so they annotate the
  // open-or-completed trace rather than opening a junk second span.
  if (obs_clock_ != nullptr && tracer_.config().sample_every != 0) {
    relay_.router().set_trace_hook(
        [this](const char* kind, net::NodeId peer,
               const gossipsub::PubSubMessage& m) {
          WakuMessage msg;
          try {
            msg = WakuMessage::deserialize(m.data);
          } catch (...) {
            return;  // non-Waku frame: never traced
          }
          const obs::TraceKey key = waku::trace_key(msg);
          if (!tracer_.sampled(key)) return;
          const bool fwd = kind[0] == 'f';
          tracer_.annotate(key, obs_clock_->now_ns(), kind,
                           "node=" + std::to_string(node_id()) +
                               (fwd ? ",to=" : ",from=") +
                               std::to_string(peer));
        });
  }

  // Periodic upkeep: per-shard nullifier-log GC (both generations and the
  // cutover domain logs), load-tracker sampling, and pending-slash
  // expiry, once per epoch.
  upkeep_task_ = network_.sim().schedule_every(
      config_.validator.epoch.epoch_length_ms, [this] {
        const std::uint64_t now = network_.local_time(node_id());
        shards_.gc(now);
        if (next_shards_ != nullptr) next_shards_->gc(now);
        reshard_.gc(current_epoch(), config_.validator.max_epoch_gap);
        if (reshard_.linger_expired(current_epoch())) {
          // Journal before applying (same fail-closed order as the
          // phase transitions): a later cutover's WAL records must
          // replay onto a coordinator that already ended this linger.
          journal(WalTag::kReshardLingerEnd, {});
          record_flight(current_epoch(), "reshard", "linger_end");
          end_reshard_linger();
        }
        for (const shard::ShardId s : shards_.subscribed()) {
          // The p95 whole-window validation latency joins the load
          // sample: a shard can be latency-bound (deep logs, fallback
          // storms) long before its message rate looks alarming.
          load_tracker_.record(s, shards_.pipeline(s).stats().accepted,
                               shards_.pipeline(s).log().entry_count(), now,
                               shard_p95_validate_ms(s));
        }
        expire_pending_slashes();
        if (obs_clock_ != nullptr) {
          const std::uint64_t epoch = current_epoch();
          record_health_snapshot(epoch);
          // Backpressure rejects are a lifecycle event, not just a
          // counter: the per-epoch delta joins the flight ring so a
          // postmortem shows WHEN the executor started shedding.
          const std::uint64_t rejected = shards_.executor_stats().rejected;
          if (rejected > executor_rejected_seen_) {
            record_flight(epoch, "backpressure",
                          "rejected_delta=" +
                              std::to_string(rejected -
                                             executor_rejected_seen_));
          }
          executor_rejected_seen_ = rejected;
          evaluate_self_anomalies(epoch);
        }
        operator_tick();
      });

  relay_.start();
}

void WakuRlnRelayNode::shutdown() {
  if (!started_) return;
  started_ = false;
  if (upkeep_task_ != 0) {
    network_.sim().cancel(upkeep_task_);
    upkeep_task_ = 0;
  }
  chain_.unsubscribe_events(chain_subscription_);
  relay_.stop();
  network_.remove_node(relay_.node_id());
}

void WakuRlnRelayNode::register_membership() {
  Transaction tx;
  tx.from = config_.account;
  tx.to = contract_;
  tx.method = "register";
  tx.calldata = identity_.pk_bytes();
  tx.value = chain_.contract_at<chain::RlnMembershipContract>(contract_)
                 .deposit();
  chain_.submit(std::move(tx));
}

std::uint64_t WakuRlnRelayNode::current_epoch() const {
  return config_.validator.epoch.epoch_at(network_.local_time(node_id()));
}

WakuMessage WakuRlnRelayNode::build_message(Bytes payload,
                                            const std::string& content_topic,
                                            std::uint64_t epoch) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  zksnark::RlnProverInput input;
  input.sk = identity_.sk;
  input.path = group_.own_path();
  input.x = message_hash(msg);
  input.epoch = Fr::from_u64(epoch);

  zksnark::RlnCircuit circuit = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(config_.tree_depth);
  const zksnark::Proof proof = zksnark::prove(
      kp.pk, circuit.builder.cs(), circuit.builder.assignment(), rng_);

  RateLimitProof bundle;
  bundle.share_x = circuit.publics.x;
  bundle.share_y = circuit.publics.y;
  bundle.nullifier = circuit.publics.nullifier;
  bundle.epoch = epoch;
  bundle.root = circuit.publics.root;
  bundle.proof = proof;
  attach_proof(msg, bundle);
  return msg;
}

std::optional<WakuRlnRelayNode::PublishRoute>
WakuRlnRelayNode::resolve_publish_route(
    const std::string& content_topic) const {
  // The quota key is the topic's rate-limit DOMAIN: while domain routing
  // is active (cutover + the post-drop-old linger) that is the
  // old-generation shard both meshes observe into — keying by the new
  // shard any earlier would let this node publish on two sibling new
  // shards of one old family in the same epoch and double-signal
  // against itself on the shared domain log. Once the linger ends (the
  // quota map re-keys in the same step — end_reshard_linger), the
  // current map is the domain.
  // NOTE the hosting checks below use each generation's OWN shard of
  // the topic; `quota` is only the rate-limit key.
  const shard::ShardId current_shard = shards_.shard_of(content_topic);
  const shard::ShardId quota =
      reshard_.domain_of(content_topic).value_or(current_shard);
  const bool next_authoritative = reshard_.next_generation_authoritative();
  if (next_authoritative && next_shards_ != nullptr) {
    const shard::ShardId s = next_shards_->shard_of(content_topic);
    if (next_shards_->subscribes(s)) {
      return PublishRoute{next_shards_->map().pubsub_topic(s), quota};
    }
  }
  if (shards_.subscribes(current_shard)) {
    return PublishRoute{shards_.map().pubsub_topic(current_shard), quota};
  }
  // Overlap fallback: not hosting the topic's old-generation shard but
  // meshing its new-generation one — publish there; dual-generation
  // enforcement debits the same domain either way.
  if (!next_authoritative && next_shards_ != nullptr) {
    const shard::ShardId s = next_shards_->shard_of(content_topic);
    if (next_shards_->subscribes(s)) {
      return PublishRoute{next_shards_->map().pubsub_topic(s), quota};
    }
  }
  return std::nullopt;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::try_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  const std::optional<PublishRoute> route =
      resolve_publish_route(content_topic);
  if (!route.has_value()) {
    ++stats_.publish_wrong_shard;
    return PublishStatus::kShardNotSubscribed;
  }
  const std::uint64_t epoch = current_epoch();
  // The honest quota is per (epoch, shard): shard-scoped nullifier logs
  // make shards independent rate-limit domains, so a publisher active on
  // two shards is not equivocating.
  const auto it = last_published_epoch_.find(route->quota_shard);
  if (it != last_published_epoch_.end() && it->second == epoch) {
    ++stats_.publish_rate_limited;
    return PublishStatus::kRateLimited;  // honest 1-per-epoch-per-shard limit
  }
  last_published_epoch_[route->quota_shard] = epoch;
  // Journaled before the message leaves: a node that crashes after
  // publishing and forgets it published would double-signal against
  // itself on restart — and forfeit its own stake. Shard-tagged so the
  // restart rebuilds the per-shard quota map.
  ByteWriter w;
  w.write_u64(epoch);
  journal(WalTag::kOwnPublish, w.data(), route->quota_shard);
  const WakuMessage msg =
      build_message(std::move(payload), content_topic, epoch);
  if (traced(msg)) {
    // Span origin: every other node opens the same trace key at "rx".
    trace_event(msg, "publish",
                "node=" + std::to_string(node_id()) +
                    ",topic=" + route->pubsub_topic +
                    ",shard=" + std::to_string(route->quota_shard));
  }
  relay_.publish_on(route->pubsub_topic, msg);
  ++stats_.published;
  return PublishStatus::kOk;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::force_publish(
    Bytes payload, const std::string& content_topic) {
  // Attackers route like everyone else (authoritative generation first)
  // but ignore hosting and the local rate limit.
  return force_publish_generation(std::move(payload), content_topic,
                                  reshard_.next_generation_authoritative());
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::force_publish_generation(
    Bytes payload, const std::string& content_topic,
    bool use_next_generation) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  shard::ShardedValidator* validator =
      use_next_generation && next_shards_ != nullptr ? next_shards_.get()
                                                     : &shards_;
  const shard::ShardId shard = validator->shard_of(content_topic);
  relay_.publish_on(
      validator->map().pubsub_topic(shard),
      build_message(std::move(payload), content_topic, current_epoch()));
  ++stats_.published;
  return PublishStatus::kOk;
}

void WakuRlnRelayNode::publish_with_invalid_proof(
    Bytes payload, const std::string& content_topic) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof junk;
  junk.share_x = message_hash(msg);
  junk.share_y = Fr::random(rng_);
  junk.nullifier = Fr::random(rng_);
  junk.epoch = current_epoch();
  junk.root = group_.root();  // recent root, but the proof is garbage
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  junk.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, junk);
  relay_.publish_on(shard_topic_for(content_topic), msg);
  ++stats_.published;
}

void WakuRlnRelayNode::publish_with_stale_root(
    Bytes payload, const std::string& content_topic) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof bundle;
  bundle.share_x = message_hash(msg);
  bundle.share_y = Fr::random(rng_);
  bundle.nullifier = Fr::random(rng_);
  bundle.epoch = current_epoch();
  // A root no validator has in its window: the message must die in the
  // cheap root stage (kRejectStaleRoot), never reaching the verifier.
  bundle.root = Fr::random(rng_);
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  bundle.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, bundle);
  relay_.publish_on(shard_topic_for(content_topic), msg);
  ++stats_.published;
}

bool WakuRlnRelayNode::force_publish_split(Bytes payload_a, Bytes payload_b) {
  if (!is_registered()) return false;
  // Disjoint targets on the default content topic's shard: prefer that
  // shard's mesh (that is who would relay), fall back to raw neighbors
  // before the mesh has formed.
  const std::string topic = shard_topic_for(kDefaultContentTopic);
  std::vector<net::NodeId> peers = relay_.router().mesh_peers(topic);
  if (peers.size() < 2) peers = network_.neighbors(node_id());
  if (peers.size() < 2) return false;

  const std::uint64_t epoch = current_epoch();
  const WakuMessage msg_a =
      build_message(std::move(payload_a), kDefaultContentTopic, epoch);
  const WakuMessage msg_b =
      build_message(std::move(payload_b), kDefaultContentTopic, epoch);
  const std::size_t half = peers.size() / 2;
  relay_.publish_to_on(topic, msg_a,
                       std::span<const net::NodeId>(peers.data(), half));
  relay_.publish_to_on(topic, msg_b,
                       std::span<const net::NodeId>(peers.data() + half,
                                                    peers.size() - half));
  stats_.published += 2;
  return true;
}

// -- Live reshard ------------------------------------------------------------

void WakuRlnRelayNode::create_next_validator() {
  const shard::ShardConfig& next = reshard_.next_config();
  next_shards_ = std::make_unique<shard::ShardedValidator>(
      zksnark::rln_keypair(config_.tree_depth).vk, group_, config_.validator,
      reshard_.next_map(), next.subscribed_shards(),
      validator_seed(next.generation));
  install_validator_hooks(*next_shards_, /*next_generation=*/true);
}

void WakuRlnRelayNode::end_reshard_linger() {
  reshard_.end_linger();
  // Re-key the quota map from domain (old-generation) to current
  // (new-generation) shard ids. A domain entry cannot be mapped to one
  // new shard (the quota key is a shard, not a topic), so merge
  // conservatively: every hosted shard inherits the newest epoch any
  // domain saw. Over-blocks by at most one publish per shard for one
  // epoch; never under-blocks, so the node cannot double-signal against
  // itself across the key-space switch.
  std::uint64_t newest = 0;
  bool any = false;
  for (const auto& [shard, epoch] : last_published_epoch_) {
    newest = std::max(newest, epoch);
    any = true;
  }
  last_published_epoch_.clear();
  if (!any) return;
  for (const shard::ShardId s : shards_.subscribed()) {
    last_published_epoch_[s] = newest;
  }
}

void WakuRlnRelayNode::apply_reshard_transition(
    shard::ReshardPhase to, std::uint64_t linger_until_epoch, bool live) {
  switch (to) {
    case shard::ReshardPhase::kStable: {
      // Drop-old: leave the outgoing generation's meshes, re-key the
      // quota, swap the incoming validator in, start the domain linger.
      if (live) {
        for (const shard::ShardId s : shards_.subscribed()) {
          relay_.router().unsubscribe(shards_.map().pubsub_topic(s));
        }
      }
      // The shard id space and the pipelines' cumulative counters both
      // restart under the new generation; stale windows would wrap.
      // (The quota map is NOT re-keyed here: it stays domain-keyed until
      // the linger ends — see end_reshard_linger.)
      load_tracker_.reset();
      reshard_.advance(linger_until_epoch);
      WAKU_EXPECTS(next_shards_ != nullptr);
      shards_ = std::move(*next_shards_);
      next_shards_.reset();
      // The moved-from container's hooks captured its old address;
      // re-install against the new home (pipelines themselves moved by
      // pointer, so their selectors stay valid).
      install_validator_hooks(shards_, /*next_generation=*/false);
      return;
    }
    case shard::ReshardPhase::kOverlap: {
      reshard_.advance();
      create_next_validator();
      // Seed the shared domain logs with the outgoing generation's
      // per-shard history: pre-cutover signals keep counting against the
      // cutover quota.
      for (const shard::ShardId s : shards_.subscribed()) {
        reshard_.seed_domain_log(s, shards_.pipeline(s).log().serialize());
      }
      if (live) {
        for (const shard::ShardId s : next_shards_->subscribed()) {
          wire_shard(*next_shards_, s);
        }
      }
      return;
    }
    case shard::ReshardPhase::kDrain:
      reshard_.advance();
      return;
    case shard::ReshardPhase::kAnnounce:
      return;  // entered via ReshardCoordinator::begin
  }
}

void WakuRlnRelayNode::journal_reshard_phase(
    shard::ReshardPhase to, std::uint64_t linger_until_epoch) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(to));
  w.write_u64(linger_until_epoch);
  if (to == shard::ReshardPhase::kAnnounce) {
    const shard::ShardConfig& next = reshard_.next_config();
    w.write_u16(next.num_shards);
    w.write_u16(static_cast<std::uint16_t>(next.subscribe.size()));
    for (const shard::ShardId s : next.subscribe) w.write_u16(s);
  }
  journal(WalTag::kReshardPhase, w.data());
}

bool WakuRlnRelayNode::begin_reshard(
    std::uint16_t target_num_shards,
    std::vector<shard::ShardId> new_subscribe) {
  if (!reshard_.begin(target_num_shards, std::move(new_subscribe))) {
    return false;
  }
  journal_reshard_phase(shard::ReshardPhase::kAnnounce, 0);
  record_flight(current_epoch(), "reshard",
                "phase=announce target=" + std::to_string(target_num_shards));
  return true;
}

bool WakuRlnRelayNode::advance_reshard() {
  shard::ReshardPhase to = shard::ReshardPhase::kStable;
  std::uint64_t linger_until_epoch = 0;
  switch (reshard_.phase()) {
    case shard::ReshardPhase::kStable:
      return false;
    case shard::ReshardPhase::kAnnounce:
      to = shard::ReshardPhase::kOverlap;
      break;
    case shard::ReshardPhase::kOverlap:
      to = shard::ReshardPhase::kDrain;
      break;
    case shard::ReshardPhase::kDrain:
      to = shard::ReshardPhase::kStable;
      // The domain logs stay authoritative until the epoch gate refuses
      // every epoch the cutover could still be adjudicating.
      linger_until_epoch = current_epoch() + config_.validator.max_epoch_gap + 1;
      break;
  }
  // Journal BEFORE applying: if the crash lands in between, the restart
  // replays the transition and resumes in the NEW phase — the fail-closed
  // direction (a node that already acted in a phase must never wake up
  // believing it hadn't; the reverse merely repeats an idempotent setup).
  journal_reshard_phase(to, linger_until_epoch);
  record_flight(current_epoch(), "reshard",
                std::string("phase=") + shard::reshard_phase_name(to));
  apply_reshard_transition(to, linger_until_epoch, /*live=*/true);
  return true;
}

// -- Autonomous operator loop -------------------------------------------------

void WakuRlnRelayNode::journal_operator_decision(std::uint8_t action,
                                                 std::uint64_t epoch,
                                                 std::uint16_t target) {
  ByteWriter w;
  w.write_u8(action);
  w.write_u64(epoch);
  w.write_u16(target);
  journal(WalTag::kOperatorDecision, w.data());
}

void WakuRlnRelayNode::operator_tick() {
  const OperatorConfig& op = config_.operator_loop;
  if (!op.enabled) return;
  const std::uint64_t epoch = current_epoch();

  if (reshard_.in_cutover()) {
    // Dwell in each phase long enough for every peer's own loop (same
    // epoch cadence, at most one epoch of skew) to reach it — advancing
    // faster would let this node hit kDrain while a peer is still
    // announcing, and honest traffic published to the new generation
    // would miss hosts.
    if (epoch < operator_phase_entered_epoch_ + op.phase_dwell_epochs) {
      return;
    }
    const char* from = shard::reshard_phase_name(reshard_.phase());
    // Journal-before-act, same order as the transition itself: a crash
    // between the two records replays the decision's bookkeeping and
    // then the phase record; a crash before the phase record replays a
    // decision whose transition re-fires from the restored phase.
    journal_operator_decision(/*action=*/1, epoch, 0);
    operator_phase_entered_epoch_ = epoch;
    ++operator_decisions_;
    record_flight(epoch, "operator", std::string("advance from=") + from);
    advance_reshard();
    return;
  }
  if (reshard_.lingering()) return;

  // Stable: act once the load tracker's recommendation (or the
  // self-monitor's p95-budget anomaly) holds for trip_epochs consecutive
  // upkeep ticks and the cooldown since the last begin has passed.
  const shard::RebalanceRecommendation rec =
      load_tracker_.recommend(shards_.map());
  // Mesh-level propagation-latency SLO joins the pressure signal: a
  // fleet whose publish->delivery p95 blows the budget needs capacity
  // even when every individual shard's validate p95 still looks fine.
  const bool pressure =
      rec.reshard_recommended ||
      anomaly_.firing(obs::AnomalyRule::kP95BudgetBreach) ||
      anomaly_.firing(obs::AnomalyRule::kPropagationLatency);
  if (!pressure) {
    operator_consecutive_recommend_ = 0;
    return;
  }
  ++operator_consecutive_recommend_;
  if (operator_consecutive_recommend_ < op.trip_epochs) return;
  if (operator_last_action_epoch_ != 0 &&
      epoch < operator_last_action_epoch_ + op.cooldown_epochs) {
    return;
  }
  // A p95-only trigger (recommendation not set) still needs a valid
  // split target; double the current layout.
  const std::uint16_t target =
      rec.reshard_recommended
          ? rec.target_shards
          : static_cast<std::uint16_t>(shards_.map().num_shards() * 2);
  // Without a chooser, fall back to the conservative refinement (each
  // old home keeps its lowest family member) — always a valid split
  // subscription, so an un-configured operator still acts.
  std::vector<shard::ShardId> subscribe =
      op.subscribe_chooser
          ? op.subscribe_chooser(target)
          : shard::refined_subscription(reshard_.current_config(), target);
  journal_operator_decision(/*action=*/0, epoch, target);
  operator_last_action_epoch_ = epoch;
  operator_phase_entered_epoch_ = epoch;
  operator_consecutive_recommend_ = 0;
  ++operator_decisions_;
  record_flight(epoch, "operator",
                "begin target=" + std::to_string(target) +
                    " reason=" + rec.reason);
  begin_reshard(target, std::move(subscribe));
}

void WakuRlnRelayNode::trigger_slash(const Fr& spammer_sk) {
  const Fr pk = hash::poseidon1(spammer_sk);
  const std::optional<std::uint64_t> index = group_.index_of(pk);
  if (!index.has_value()) return;  // unknown/already slashed, or light node
  if (slashes_in_flight_.contains(*index)) return;
  slashes_in_flight_.insert(*index);

  PendingSlash pending;
  pending.sk = spammer_sk;
  pending.index = *index;
  pending.salt = ff::U256{rng_.next_u64(), rng_.next_u64(), rng_.next_u64(),
                          rng_.next_u64()};
  pending.commitment = chain::RlnMembershipContract::make_slash_commitment(
      spammer_sk, pending.salt, config_.account);
  pending.commit_epoch = current_epoch();

  // Write-ahead: the salt exists nowhere else. A crash between this
  // commit and the reveal must not forfeit the slashing reward (the
  // journaled entry lets the restarted node reveal).
  ByteWriter w;
  w.write_raw(pending.sk.to_bytes_be());
  w.write_raw(ff::u256_to_bytes_be(pending.salt));
  w.write_u64(pending.index);
  w.write_raw(ff::u256_to_bytes_be(pending.commitment));
  w.write_u64(pending.commit_epoch);
  journal(WalTag::kSlashCommit, w.data());
  record_flight(pending.commit_epoch, "slash",
                "commit index=" + std::to_string(pending.index));

  Transaction commit;
  commit.from = config_.account;
  commit.to = contract_;
  commit.method = "commit_slash";
  commit.calldata = ff::u256_to_bytes_be(pending.commitment);
  chain_.submit(std::move(commit));
  ++stats_.slash_commits;
  pending_slashes_.push_back(pending);
}

void WakuRlnRelayNode::resolve_slash(std::uint64_t index) {
  const std::size_t erased = std::erase_if(
      pending_slashes_,
      [index](const PendingSlash& p) { return p.index == index; });
  const bool in_flight = slashes_in_flight_.erase(index) > 0;
  if (erased > 0 || in_flight) {
    ByteWriter w;
    w.write_u64(index);
    journal(WalTag::kSlashResolve, w.data());
  }
}

void WakuRlnRelayNode::expire_pending_slashes() {
  const std::uint64_t epoch = current_epoch();
  std::vector<std::uint64_t> expired;
  for (const PendingSlash& pending : pending_slashes_) {
    if (epoch_distance(epoch, pending.commit_epoch) >
        config_.slash_expiry_epochs) {
      expired.push_back(pending.index);
    }
  }
  for (const std::uint64_t index : expired) {
    ++stats_.slashes_expired;
    resolve_slash(index);
  }
}

void WakuRlnRelayNode::handle_chain_event(const chain::Event& event) {
  ++event_cursor_;
  group_.on_event(event);

  // Record the root transition (if any) for delta-checkpoint serving. A
  // batched event folds into one transition, so one entry per event max.
  const Fr now_root = group_.root();
  const Fr& prev_root =
      root_history_.empty() ? root_at_floor_ : root_history_.back().root;
  if (now_root != prev_root) {
    root_history_.push_back(RootTransition{event_cursor_, now_root});
    if (root_history_.size() > kRootHistoryCap) {
      root_history_floor_ = root_history_.front().cursor;
      root_at_floor_ = root_history_.front().root;
      root_history_.pop_front();
    }
  }

  if (event.name == "SlashCommitted") {
    // Our commitment is mined: submit the reveal (it lands in a later
    // block, satisfying the contract's maturity check). During restart
    // replay this is exactly where a crash-interrupted commit-reveal
    // resumes: the journaled pending entry meets its re-replayed
    // SlashCommitted event.
    for (PendingSlash& pending : pending_slashes_) {
      if (pending.revealed || event.topics[0] != pending.commitment) continue;
      pending.revealed = true;

      ByteWriter w;
      w.write_raw(pending.sk.to_bytes_be());
      w.write_raw(ff::u256_to_bytes_be(pending.salt));
      w.write_u64(pending.index);
      // Attach the pre-removal auth path for partial-view peers ([18]).
      if (group_.mode() == TreeMode::kFullTree) {
        w.write_raw(merkle::serialize_path(group_.path_of(pending.index)));
      }
      Transaction reveal;
      reveal.from = config_.account;
      reveal.to = contract_;
      reveal.method = "reveal_slash";
      reveal.calldata = std::move(w).take();
      chain_.submit(std::move(reveal));
      ++stats_.slash_reveals;

      // Journaled only after the submit: a crash in between makes the
      // restarted node re-submit the reveal (the contract rejects the
      // duplicate — cheap), whereas journaling first would record a
      // reveal that never reached the chain and forfeit the reward.
      ByteWriter j;
      j.write_raw(ff::u256_to_bytes_be(pending.commitment));
      journal(WalTag::kSlashReveal, j.data());
    }
  } else if (event.name == "MemberSlashed") {
    record_flight(current_epoch(), "slash",
                  "member_slashed index=" +
                      std::to_string(event.topics[0].limb[0]));
    resolve_slash(event.topics[0].limb[0]);
    // The third topic names the rewarded slasher.
    if (event.topics.size() >= 3 &&
        event.topics[2] == config_.account.to_u256()) {
      ++stats_.slash_rewards;
    }
  } else if (event.name == "MemberWithdrawn") {
    // A withdraw that races our commit-reveal would otherwise leave the
    // index blocked in slashes_in_flight_ forever.
    resolve_slash(event.topics[0].limb[0]);
  } else if (event.name == "MembersWithdrawn") {
    // Batched exit: resolve every index in the record list, same race as
    // the single-withdraw case above.
    const std::uint64_t n = event.topics[0].limb[0];
    ByteReader r(event.data);
    for (std::uint64_t i = 0; i < n; ++i) {
      resolve_slash(r.read_u64());
      r.read_raw(32);  // pk
      r.read_bytes();  // echoed auth path
    }
  }
}

// -- Observability -----------------------------------------------------------

void WakuRlnRelayNode::setup_observability() {
  if (!config_.obs.enabled) return;
  if (config_.obs.clock != nullptr) {
    obs_clock_ = config_.obs.clock;
    return;
  }
  // Default: the node's own virtual time (ms scaled to ns). Under the
  // deterministic simulator every execution makes identical clock
  // observations, so telemetry-on runs stay bit-for-bit reproducible;
  // benches/deployments inject obs::steady_clock() for wall time.
  sim_clock_ = std::make_unique<obs::FnClock>(
      [this] { return network_.local_time(node_id()) * 1'000'000ULL; });
  obs_clock_ = sim_clock_.get();
}

PipelineMetrics& WakuRlnRelayNode::metrics_for_shard(shard::ShardId shard) {
  const auto it = pipeline_metrics_.find(shard);
  if (it != pipeline_metrics_.end()) return it->second;
  const std::string shard_label = "shard=\"" + std::to_string(shard) + "\"";
  const auto stage = [&](const char* name) {
    return &telemetry_.histogram(
        "waku_pipeline_stage_seconds",
        std::string("stage=\"") + name + "\"," + shard_label,
        "Per-stage validation latency");
  };
  PipelineMetrics& m = pipeline_metrics_[shard];
  m.epoch_gate = stage("epoch_gate");
  m.root_check = stage("root_check");
  m.nullifier_precheck = stage("nullifier_precheck");
  m.groth16_batch = stage("groth16_batch");
  m.groth16_fallback = stage("groth16_fallback");
  m.double_signal = stage("double_signal");
  m.window = &telemetry_.histogram("waku_pipeline_validate_seconds",
                                   shard_label,
                                   "Whole validate_batch window latency");
  return m;
}

bool WakuRlnRelayNode::traced(const WakuMessage& msg) const {
  return obs_clock_ != nullptr && tracer_.config().sample_every != 0 &&
         tracer_.sampled(waku::trace_key(msg));
}

void WakuRlnRelayNode::trace_event(const WakuMessage& msg, const char* stage,
                                   std::string detail) {
  if (obs_clock_ == nullptr || tracer_.config().sample_every == 0) return;
  const obs::TraceKey key = waku::trace_key(msg);
  if (!tracer_.sampled(key)) return;  // no clock read for the N-1 in N
  tracer_.record(key, obs_clock_->now_ns(), stage, std::move(detail));
}

void WakuRlnRelayNode::trace_finish(const WakuMessage& msg,
                                    std::string outcome) {
  if (obs_clock_ == nullptr || tracer_.config().sample_every == 0) return;
  const obs::TraceKey key = waku::trace_key(msg);
  if (!tracer_.sampled(key)) return;
  tracer_.finish(key, obs_clock_->now_ns(), std::move(outcome));
}

std::vector<obs::Trace> WakuRlnRelayNode::trace_dump() const {
  std::vector<obs::Trace> out = tracer_.completed();
  const std::vector<obs::Trace> slow = tracer_.slowest();
  out.insert(out.end(), slow.begin(), slow.end());
  return out;
}

double WakuRlnRelayNode::shard_p95_validate_ms(shard::ShardId shard) const {
  const auto it = pipeline_metrics_.find(shard);
  if (it == pipeline_metrics_.end() || it->second.window == nullptr) {
    return 0.0;
  }
  return static_cast<double>(it->second.window->snapshot().p95) / 1e6;
}

NodeTelemetrySnapshot WakuRlnRelayNode::telemetry_snapshot() const {
  NodeTelemetrySnapshot t;
  t.router = relay_.stats();
  t.node = stats_;
  t.pipeline = shards_.stats();
  t.executor = shards_.executor_stats();
  for (const shard::ShardId s : shards_.subscribed()) {
    t.per_shard.emplace_back(s, shards_.pipeline(s).stats());
  }
  t.graylisted = relay_.router().scores().graylist_count();
  t.pending_validation = relay_.router().pending_validation_total();
  t.trace = tracer_.stats();
  return t;
}

void WakuRlnRelayNode::record_health_snapshot(std::uint64_t epoch) {
  const NodeTelemetrySnapshot t = telemetry_snapshot();
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"epoch\":%" PRIu64 ",\"published\":%" PRIu64
      ",\"delivered\":%" PRIu64 ",\"accepted\":%" PRIu64
      ",\"spam_detected\":%" PRIu64 ",\"batches\":%" PRIu64
      ",\"executor_executed\":%" PRIu64 ",\"log_entries\":%" PRIu64
      ",\"pending_validation\":%zu,\"graylisted\":%zu,\"open_traces\":%zu"
      ",\"p95_validate_ms\":%.3f}",
      epoch, t.node.published, t.node.delivered, t.pipeline.accepted,
      t.pipeline.spam_detected, t.pipeline.batches, t.executor.executed,
      t.pipeline.log_entries, t.pending_validation, t.graylisted,
      tracer_.open_count(), shard_p95_validate_ms(shards_.default_shard()));
  health_log_.emplace_back(buf);
  while (health_log_.size() > config_.obs.health_log_capacity) {
    health_log_.pop_front();
  }
}

void WakuRlnRelayNode::record_flight(std::uint64_t epoch, const char* kind,
                                     std::string detail) {
  // The recorder follows the obs master switch: disabled telemetry means
  // no clock, and a timestamp-less black box would break the
  // deterministic byte-identity the recorder promises.
  if (obs_clock_ == nullptr) return;
  recorder_.record(obs_clock_->now_ns(), epoch, kind, std::move(detail));
}

obs::NodeHealthSample WakuRlnRelayNode::health_sample() const {
  const NodeTelemetrySnapshot t = telemetry_snapshot();
  obs::NodeHealthSample s;
  s.node_id = node_id();
  s.epoch = current_epoch();
  s.published = t.node.published;
  s.delivered = t.node.delivered;
  s.accepted = t.pipeline.accepted;
  s.spam_detected = t.pipeline.spam_detected;
  s.log_entries = t.pipeline.log_entries;
  s.executor_rejected = t.executor.rejected;
  // Quota saturation: fraction of hosted shards whose 1-msg/epoch honest
  // quota is already consumed this epoch.
  std::size_t saturated = 0;
  for (const shard::ShardId sh : shards_.subscribed()) {
    const auto it = last_published_epoch_.find(sh);
    if (it != last_published_epoch_.end() && it->second == s.epoch) {
      ++saturated;
    }
  }
  if (!shards_.subscribed().empty()) {
    s.quota_saturation = static_cast<double>(saturated) /
                         static_cast<double>(shards_.subscribed().size());
  }
  for (const shard::ShardId sh : shards_.subscribed()) {
    s.shards.push_back(obs::ShardHealth{sh, shard_p95_validate_ms(sh)});
  }
  return s;
}

void WakuRlnRelayNode::evaluate_self_anomalies(std::uint64_t epoch) {
  self_fleet_.ingest(health_sample());
  const obs::FleetEpochSeries* row = self_fleet_.close_epoch(epoch);
  if (row == nullptr) return;
  for (const obs::AnomalyVerdict& v : anomaly_.evaluate(*row)) {
    if (!v.changed) continue;
    record_flight(epoch, "anomaly",
                  std::string(obs::anomaly_rule_name(v.rule)) +
                      (v.firing ? " firing" : " cleared") +
                      " observed=" + obs::format_double(v.observed));
    if (v.firing) {
      dump_postmortem(std::string("anomaly:") +
                      obs::anomaly_rule_name(v.rule));
    }
  }
}

void WakuRlnRelayNode::dump_postmortem(const std::string& reason) {
  last_postmortem_ = recorder_.postmortem_json(reason);
  if (config_.persist_dir.empty()) return;
  const std::string path = config_.persist_dir + "/postmortem.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;  // best-effort: the in-memory copy survives
  std::fwrite(last_postmortem_.data(), 1, last_postmortem_.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

std::string WakuRlnRelayNode::metrics_text() const {
  const NodeTelemetrySnapshot t = telemetry_snapshot();
  obs::PrometheusWriter w;
  const auto shard_label = [](shard::ShardId s) {
    return "shard=\"" + std::to_string(s) + "\"";
  };

  struct Sample {
    const char* name;
    const char* help;
    std::uint64_t value;
  };
  const Sample node_counters[] = {
      {"waku_node_published_total", "Messages this node published",
       t.node.published},
      {"waku_node_publish_rate_limited_total",
       "Honest publishes refused by the 1-per-epoch-per-shard quota",
       t.node.publish_rate_limited},
      {"waku_node_publish_wrong_shard_total",
       "Publishes refused: topic maps to an unhosted shard",
       t.node.publish_wrong_shard},
      {"waku_node_delivered_total", "Validated messages delivered locally",
       t.node.delivered},
      {"waku_node_slash_commits_total", "Slash commitments submitted",
       t.node.slash_commits},
      {"waku_node_slash_reveals_total", "Slash reveals submitted",
       t.node.slash_reveals},
      {"waku_node_slash_rewards_total", "MemberSlashed events paying us",
       t.node.slash_rewards},
      {"waku_node_slashes_expired_total",
       "Pending slashes dropped by the expiry window", t.node.slashes_expired},
  };
  for (const Sample& s : node_counters) {
    w.help_type(s.name, "counter", s.help);
    w.counter(s.name, "", s.value);
  }

  const Sample router_counters[] = {
      {"waku_router_delivered_total", "Unique valid messages delivered",
       t.router.delivered},
      {"waku_router_duplicates_total", "Already-seen publishes received",
       t.router.duplicates},
      {"waku_router_rejected_total", "Validation rejects", t.router.rejected},
      {"waku_router_ignored_total", "Validation ignores", t.router.ignored},
      {"waku_router_forwarded_total", "Publishes relayed onward",
       t.router.forwarded},
      {"waku_router_validation_windows_flushed_total",
       "Batched-validation windows handed to a validator",
       t.router.validation_windows_flushed},
  };
  for (const Sample& s : router_counters) {
    w.help_type(s.name, "counter", s.help);
    w.counter(s.name, "", s.value);
  }
  w.help_type("waku_router_pending_validation", "gauge",
              "Messages buffered awaiting batched validation");
  w.gauge("waku_router_pending_validation", "",
          static_cast<double>(t.pending_validation));
  w.help_type("waku_score_graylisted", "gauge",
              "Peers currently below the graylist threshold");
  w.gauge("waku_score_graylisted", "", static_cast<double>(t.graylisted));

  // Per-shard verdict-reason counters: one family, labelled series.
  w.help_type("waku_pipeline_verdicts_total", "counter",
              "Validation verdicts by reason, per rate-limit domain");
  for (const auto& [s, stats] : t.per_shard) {
    const std::string sl = shard_label(s);
    const auto verdict = [&](const char* reason, std::uint64_t v) {
      w.counter("waku_pipeline_verdicts_total",
                sl + ",reason=\"" + reason + "\"", v);
    };
    verdict("accept", stats.accepted);
    verdict("epoch_gap", stats.epoch_gap);
    verdict("duplicate", stats.duplicates);
    verdict("no_proof", stats.no_proof);
    verdict("bad_proof", stats.bad_proof);
    verdict("stale_root", stats.stale_root);
    verdict("spam", stats.spam_detected);
  }

  struct ShardCounter {
    const char* name;
    const char* help;
    std::uint64_t ValidatorStats::* field;
  };
  const ShardCounter shard_counters[] = {
      {"waku_pipeline_batches_total", "validate_batch windows run",
       &ValidatorStats::batches},
      {"waku_pipeline_batch_aggregated_total",
       "Windows settled by one RLC-aggregated Groth16 check",
       &ValidatorStats::batch_aggregated},
      {"waku_pipeline_batch_fallbacks_total",
       "Windows that isolated per proof", &ValidatorStats::batch_fallbacks},
      {"waku_pipeline_precheck_duplicates_total",
       "Gossip echoes dropped before the verifier",
       &ValidatorStats::precheck_duplicates},
  };
  for (const ShardCounter& c : shard_counters) {
    w.help_type(c.name, "counter", c.help);
    for (const auto& [s, stats] : t.per_shard) {
      w.counter(c.name, shard_label(s), stats.*(c.field));
    }
  }

  // Nullifier-log view, including the stripe contention counters.
  w.help_type("waku_nullifier_log_entries", "gauge",
              "Live (epoch, nullifier) records");
  for (const auto& [s, stats] : t.per_shard) {
    w.gauge("waku_nullifier_log_entries", shard_label(s),
            static_cast<double>(stats.log_entries));
  }
  w.help_type("waku_nullifier_log_buckets", "gauge", "Live epoch buckets");
  for (const auto& [s, stats] : t.per_shard) {
    w.gauge("waku_nullifier_log_buckets", shard_label(s),
            static_cast<double>(stats.log_buckets));
  }
  w.help_type("waku_nullifier_log_conflicts_total", "counter",
              "Double-signals observed");
  for (const auto& [s, stats] : t.per_shard) {
    w.counter("waku_nullifier_log_conflicts_total", shard_label(s),
              stats.log_conflicts);
  }
  w.help_type("waku_nullifier_log_min_epoch", "gauge", "GC watermark");
  for (const auto& [s, stats] : t.per_shard) {
    w.gauge("waku_nullifier_log_min_epoch", shard_label(s),
            static_cast<double>(stats.log_min_epoch));
  }
  w.help_type("waku_nullifier_log_stripe_acquisitions_total", "counter",
              "Hot-path lock acquisitions per stripe");
  for (const shard::ShardId s : shards_.subscribed()) {
    const auto stripes = shards_.log_of(s).stripe_contention();
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      w.counter("waku_nullifier_log_stripe_acquisitions_total",
                shard_label(s) + ",stripe=\"" + std::to_string(i) + "\"",
                stripes[i].acquisitions);
    }
  }
  w.help_type("waku_nullifier_log_stripe_contended_total", "counter",
              "Hot-path acquisitions that found the stripe lock held");
  for (const shard::ShardId s : shards_.subscribed()) {
    const auto stripes = shards_.log_of(s).stripe_contention();
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      w.counter("waku_nullifier_log_stripe_contended_total",
                shard_label(s) + ",stripe=\"" + std::to_string(i) + "\"",
                stripes[i].contended);
    }
  }

  w.help_type("waku_root_cache_hits_total", "counter",
              "Root checks answered from the shard-local window copy");
  for (const shard::ShardId s : shards_.subscribed()) {
    w.counter("waku_root_cache_hits_total", shard_label(s),
              shards_.root_cache_stats(s).hits);
  }
  w.help_type("waku_root_cache_misses_total", "counter",
              "Root checks that missed the rolling window");
  for (const shard::ShardId s : shards_.subscribed()) {
    w.counter("waku_root_cache_misses_total", shard_label(s),
              shards_.root_cache_stats(s).misses);
  }
  w.help_type("waku_root_cache_refreshes_total", "counter",
              "Window copies rebuilt after membership events");
  for (const shard::ShardId s : shards_.subscribed()) {
    w.counter("waku_root_cache_refreshes_total", shard_label(s),
              shards_.root_cache_stats(s).refreshes);
  }

  // Executor: pool counters plus per-lane queue-wait/service histograms.
  const Sample executor_counters[] = {
      {"waku_executor_submitted_total", "Windows accepted (queued or inline)",
       t.executor.submitted},
      {"waku_executor_executed_total", "Windows completed",
       t.executor.executed},
      {"waku_executor_rejected_total", "Windows refused by backpressure",
       t.executor.rejected},
      {"waku_executor_blocked_total", "Submits that waited on a full queue",
       t.executor.blocked},
  };
  for (const Sample& s : executor_counters) {
    w.help_type(s.name, "counter", s.help);
    w.counter(s.name, "", s.value);
  }
  w.help_type("waku_executor_workers", "gauge",
              "Worker pool size (0 = deterministic/inline)");
  w.gauge("waku_executor_workers", "",
          static_cast<double>(t.executor.workers));
  const std::vector<LaneObsSnapshot> lanes = shards_.executor_lane_stats();
  w.help_type("waku_executor_queue_wait_seconds", "histogram",
              "Window time from enqueue to pop, per lane");
  for (const LaneObsSnapshot& lane : lanes) {
    w.histogram("waku_executor_queue_wait_seconds",
                "lane=\"" + std::to_string(lane.lane) + "\"", lane.queue_wait,
                1e-9);
  }
  w.help_type("waku_executor_service_seconds", "histogram",
              "Window execution time, per lane");
  for (const LaneObsSnapshot& lane : lanes) {
    w.histogram("waku_executor_service_seconds",
                "lane=\"" + std::to_string(lane.lane) + "\"", lane.service,
                1e-9);
  }
  w.help_type("waku_executor_lane_depth_high_watermark", "gauge",
              "Deepest the lane's queue has ever been");
  for (const LaneObsSnapshot& lane : lanes) {
    w.gauge("waku_executor_lane_depth_high_watermark",
            "lane=\"" + std::to_string(lane.lane) + "\"",
            static_cast<double>(lane.depth_high_watermark));
  }

  // Per-stage latency quantiles (the registry's histogram families carry
  // the full buckets; these gauges answer p50/p95/p99 directly).
  w.help_type("waku_pipeline_stage_quantile_seconds", "gauge",
              "Per-stage latency quantiles (<=2x log2-bucket overestimate)");
  struct StageRef {
    const char* name;
    obs::Histogram* PipelineMetrics::* member;
  };
  const StageRef stages[] = {
      {"epoch_gate", &PipelineMetrics::epoch_gate},
      {"root_check", &PipelineMetrics::root_check},
      {"nullifier_precheck", &PipelineMetrics::nullifier_precheck},
      {"groth16_batch", &PipelineMetrics::groth16_batch},
      {"groth16_fallback", &PipelineMetrics::groth16_fallback},
      {"double_signal", &PipelineMetrics::double_signal},
  };
  for (const auto& [s, m] : pipeline_metrics_) {
    for (const StageRef& stage : stages) {
      const obs::Histogram* h = m.*(stage.member);
      if (h == nullptr) continue;
      const obs::HistogramSnapshot snap = h->snapshot();
      const std::string base = std::string("stage=\"") + stage.name + "\"," +
                               shard_label(s) + ",quantile=\"";
      w.gauge("waku_pipeline_stage_quantile_seconds", base + "0.5\"",
              static_cast<double>(snap.p50) * 1e-9);
      w.gauge("waku_pipeline_stage_quantile_seconds", base + "0.95\"",
              static_cast<double>(snap.p95) * 1e-9);
      w.gauge("waku_pipeline_stage_quantile_seconds", base + "0.99\"",
              static_cast<double>(snap.p99) * 1e-9);
    }
  }
  w.help_type("waku_shard_p95_validate_seconds", "gauge",
              "p95 whole-window validation latency per shard");
  for (const auto& [s, m] : pipeline_metrics_) {
    w.gauge("waku_shard_p95_validate_seconds", shard_label(s),
            shard_p95_validate_ms(s) * 1e-3);
  }

  const Sample trace_counters[] = {
      {"waku_trace_sampled_total", "Lifecycle spans opened",
       t.trace.sampled},
      {"waku_trace_finished_total", "Spans closed normally",
       t.trace.finished},
      {"waku_trace_evicted_total", "Completed-ring evictions",
       t.trace.evicted},
      {"waku_trace_truncated_total", "Open spans force-closed (cap hit)",
       t.trace.truncated},
  };
  for (const Sample& s : trace_counters) {
    w.help_type(s.name, "counter", s.help);
    w.counter(s.name, "", s.value);
  }
  w.help_type("waku_trace_open", "gauge", "Spans currently open");
  w.gauge("waku_trace_open", "", static_cast<double>(tracer_.open_count()));

  // Operator loop / flight recorder / self-monitor anomalies.
  const Sample ops_counters[] = {
      {"waku_operator_decisions_total",
       "Autonomous operator begin/advance decisions", operator_decisions_},
      {"waku_flight_events_total",
       "Lifecycle events recorded to the flight ring", recorder_.recorded()},
      {"waku_flight_evicted_total",
       "Flight events dropped off the bounded ring", recorder_.evicted()},
      {"waku_anomaly_fired_total",
       "Self-monitor anomaly rule fire transitions", anomaly_.fired_total()},
  };
  for (const Sample& s : ops_counters) {
    w.help_type(s.name, "counter", s.help);
    w.counter(s.name, "", s.value);
  }

  // The registry renders itself (stage/window latency histograms); the
  // single-node fleet view appends its waku_fleet_* families once the
  // first epoch closed.
  return w.text() + self_fleet_.to_prometheus() + telemetry_.to_prometheus();
}

std::string WakuRlnRelayNode::metrics_json() const {
  const NodeTelemetrySnapshot t = telemetry_snapshot();
  std::string out = "{";
  char buf[256];
  const auto obj = [&out](const char* name) {
    out += std::string("\"") + name + "\":{";
  };
  const auto u64 = [&](const char* name, std::uint64_t v, bool last = false) {
    std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", name, v,
                  last ? "" : ",");
    out += buf;
  };

  obj("node");
  u64("published", t.node.published);
  u64("publish_rate_limited", t.node.publish_rate_limited);
  u64("publish_wrong_shard", t.node.publish_wrong_shard);
  u64("delivered", t.node.delivered);
  u64("slash_commits", t.node.slash_commits);
  u64("slash_reveals", t.node.slash_reveals);
  u64("slash_rewards", t.node.slash_rewards);
  u64("slashes_expired", t.node.slashes_expired, true);
  out += "},";

  obj("router");
  u64("delivered", t.router.delivered);
  u64("duplicates", t.router.duplicates);
  u64("rejected", t.router.rejected);
  u64("ignored", t.router.ignored);
  u64("forwarded", t.router.forwarded);
  u64("validation_windows_flushed", t.router.validation_windows_flushed);
  u64("pending_validation", t.pending_validation, true);
  out += "},";

  obj("pipeline");
  u64("accepted", t.pipeline.accepted);
  u64("epoch_gap", t.pipeline.epoch_gap);
  u64("duplicates", t.pipeline.duplicates);
  u64("no_proof", t.pipeline.no_proof);
  u64("bad_proof", t.pipeline.bad_proof);
  u64("stale_root", t.pipeline.stale_root);
  u64("spam_detected", t.pipeline.spam_detected);
  u64("batches", t.pipeline.batches);
  u64("batch_aggregated", t.pipeline.batch_aggregated);
  u64("batch_fallbacks", t.pipeline.batch_fallbacks);
  u64("precheck_duplicates", t.pipeline.precheck_duplicates);
  u64("log_entries", t.pipeline.log_entries);
  u64("log_conflicts", t.pipeline.log_conflicts, true);
  out += "},";

  out += "\"per_shard\":[";
  for (std::size_t i = 0; i < t.per_shard.size(); ++i) {
    const auto& [s, stats] = t.per_shard[i];
    if (i > 0) out += ",";
    out += "{";
    u64("shard", s);
    u64("accepted", stats.accepted);
    u64("spam_detected", stats.spam_detected);
    u64("stale_root", stats.stale_root);
    u64("log_entries", stats.log_entries);
    std::snprintf(buf, sizeof buf, "\"p95_validate_ms\":%.3f}",
                  shard_p95_validate_ms(s));
    out += buf;
  }
  out += "],";

  obj("executor");
  u64("submitted", t.executor.submitted);
  u64("executed", t.executor.executed);
  u64("rejected", t.executor.rejected);
  u64("blocked", t.executor.blocked);
  u64("workers", t.executor.workers, true);
  out += "},";

  out += "\"executor_lanes\":[";
  const std::vector<LaneObsSnapshot> lanes = shards_.executor_lane_stats();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (i > 0) out += ",";
    out += "{";
    u64("lane", lanes[i].lane);
    u64("queue_wait_count", lanes[i].queue_wait.count);
    u64("queue_wait_p95_ns", lanes[i].queue_wait.p95);
    u64("service_count", lanes[i].service.count);
    u64("service_p95_ns", lanes[i].service.p95);
    u64("depth_high_watermark", lanes[i].depth_high_watermark, true);
    out += "}";
  }
  out += "],";

  obj("trace");
  u64("sampled", t.trace.sampled);
  u64("finished", t.trace.finished);
  u64("evicted", t.trace.evicted);
  u64("truncated", t.trace.truncated);
  u64("open", tracer_.open_count(), true);
  out += "},";

  obj("operator");
  u64("decisions", operator_decisions_);
  u64("last_action_epoch", operator_last_action_epoch_);
  u64("consecutive_recommend", operator_consecutive_recommend_);
  u64("flight_recorded", recorder_.recorded());
  u64("flight_evicted", recorder_.evicted());
  u64("anomalies_fired", anomaly_.fired_total(), true);
  out += "},";

  out += "\"fleet\":" + self_fleet_.timeline_json() + ",";
  out += "\"registry\":" + telemetry_.to_json() + "}";
  return out;
}

// -- Durable state -----------------------------------------------------------

void WakuRlnRelayNode::journal(WalTag tag, BytesView payload,
                               std::uint16_t shard) {
  if (state_store_.has_value()) {
    state_store_->append(static_cast<std::uint8_t>(tag), payload, shard);
  }
}

void WakuRlnRelayNode::force_snapshot() {
  if (state_store_.has_value()) state_store_->force_snapshot();
}

Bytes WakuRlnRelayNode::serialize_state() const {
  ByteWriter w;
  w.write_u8(5);  // version 5: + operator-loop bookkeeping
  // The identity secret rides in the snapshot so a restart is
  // self-contained. With keystore_password set it travels sealed under the
  // ChaCha20-Poly1305 keystore (rln/keystore.hpp) — leaking a snapshot
  // file then leaks a stake-bearing sk only through the password. Sealing
  // draws a fresh salt/nonce per snapshot, so sealed snapshots are not
  // byte-reproducible (plaintext ones still are).
  if (config_.keystore_password.empty()) {
    w.write_u8(0);  // plaintext sk
    w.write_raw(identity_.sk.to_bytes_be());
  } else {
    w.write_u8(1);  // keystore-sealed credential
    MembershipCredential credential;
    credential.identity = identity_;
    credential.member_index = group_.own_index().value_or(0);
    w.write_bytes(keystore_seal(credential, config_.keystore_password,
                                seal_rng_));
  }
  w.write_u64(event_cursor_);
  // Sealed snapshots must not leak the sk through the group blob either —
  // the credential above is its only (encrypted) carrier.
  w.write_bytes(group_.serialize(
      /*include_identity=*/config_.keystore_password.empty()));
  // Cutover state machine + shared domain logs + (mid-reshard) the
  // incoming generation's pipeline state: a crashed node restarts into
  // the exact journaled phase, dual-subscription and all.
  w.write_bytes(reshard_.serialize());
  w.write_bytes(shards_.serialize_state());
  w.write_u8(next_shards_ != nullptr ? 1 : 0);
  if (next_shards_ != nullptr) {
    w.write_bytes(next_shards_->serialize_state());
  }
  // Per-shard honest-quota map, sorted by shard so identical states
  // serialize byte-identically (restart tests assert on it).
  std::vector<std::pair<shard::ShardId, std::uint64_t>> quota(
      last_published_epoch_.begin(), last_published_epoch_.end());
  std::sort(quota.begin(), quota.end());
  w.write_u16(static_cast<std::uint16_t>(quota.size()));
  for (const auto& [shard, epoch] : quota) {
    w.write_u16(shard);
    w.write_u64(epoch);
  }
  w.write_u64(stats_.published);
  w.write_u64(stats_.publish_rate_limited);
  w.write_u64(stats_.publish_wrong_shard);
  w.write_u64(stats_.delivered);
  w.write_u64(stats_.slash_commits);
  w.write_u64(stats_.slash_reveals);
  w.write_u64(stats_.slash_rewards);
  w.write_u64(stats_.slashes_expired);
  w.write_u32(static_cast<std::uint32_t>(pending_slashes_.size()));
  for (const PendingSlash& p : pending_slashes_) {
    w.write_raw(p.sk.to_bytes_be());
    w.write_raw(ff::u256_to_bytes_be(p.salt));
    w.write_u64(p.index);
    w.write_raw(ff::u256_to_bytes_be(p.commitment));
    w.write_u8(p.revealed ? 1 : 0);
    w.write_u64(p.commit_epoch);
  }
  // Operator-loop bookkeeping (v5): a restarted node resumes the
  // cooldown/dwell anchors instead of re-triggering immediately.
  w.write_u64(operator_last_action_epoch_);
  w.write_u64(operator_phase_entered_epoch_);
  w.write_u64(operator_consecutive_recommend_);
  w.write_u64(operator_decisions_);
  return std::move(w).take();
}

void WakuRlnRelayNode::restore_snapshot(BytesView payload) {
  ByteReader r(payload);
  WAKU_EXPECTS(r.read_u8() == 5);
  const std::uint8_t sealed = r.read_u8();
  if (sealed == 0) {
    identity_ = Identity::from_secret(Fr::from_bytes_reduce(r.read_raw(32)));
  } else {
    // Fail closed: without the right password there is no identity to run
    // as, and booting with a fresh one would silently fork the membership.
    const Bytes blob = r.read_bytes();
    const std::optional<MembershipCredential> credential =
        keystore_open(blob, config_.keystore_password);
    if (!credential.has_value()) {
      throw std::runtime_error(
          "snapshot keystore: wrong password or tampered credential "
          "(refusing to restore)");
    }
    identity_ = credential->identity;
  }
  event_cursor_ = r.read_u64();
  const Bytes group_bytes = r.read_bytes();
  group_.restore(group_bytes);
  if (sealed != 0) {
    // The group blob was serialized identity-free; re-inject the unsealed
    // identity (the restored own_index is kept as-is).
    group_.set_own_identity(identity_);
  }
  const Bytes reshard_bytes = r.read_bytes();
  reshard_.restore(reshard_bytes);
  // The coordinator is authoritative for the effective layout: a node
  // that completed (or is mid-way through) a reshard has moved past its
  // construction-time ShardConfig, so rebuild the validator containers
  // to match before restoring their pipeline state into them.
  if (!(shards_.map() == reshard_.current_map())) {
    shards_ = shard::ShardedValidator(
        zksnark::rln_keypair(config_.tree_depth).vk, group_,
        config_.validator, reshard_.current_map(),
        reshard_.current_config().subscribed_shards(),
        validator_seed(reshard_.current_config().generation));
    install_validator_hooks(shards_, /*next_generation=*/false);
  }
  next_shards_.reset();
  if (reshard_.in_cutover() && reshard_.phase() != shard::ReshardPhase::kAnnounce) {
    create_next_validator();
  }
  const Bytes shards_bytes = r.read_bytes();
  shards_.restore_state(shards_bytes);
  if (r.read_u8() != 0) {
    const Bytes next_bytes = r.read_bytes();
    WAKU_EXPECTS(next_shards_ != nullptr);
    next_shards_->restore_state(next_bytes);
  }
  last_published_epoch_.clear();
  const std::uint16_t quota_count = r.read_u16();
  for (std::uint16_t i = 0; i < quota_count; ++i) {
    const shard::ShardId shard = r.read_u16();
    last_published_epoch_[shard] = r.read_u64();
  }
  stats_ = NodeStats{};
  stats_.published = r.read_u64();
  stats_.publish_rate_limited = r.read_u64();
  stats_.publish_wrong_shard = r.read_u64();
  stats_.delivered = r.read_u64();
  stats_.slash_commits = r.read_u64();
  stats_.slash_reveals = r.read_u64();
  stats_.slash_rewards = r.read_u64();
  stats_.slashes_expired = r.read_u64();
  pending_slashes_.clear();
  slashes_in_flight_.clear();
  const std::uint32_t pending_count = r.read_u32();
  for (std::uint32_t i = 0; i < pending_count; ++i) {
    PendingSlash p;
    p.sk = Fr::from_bytes_reduce(r.read_raw(32));
    p.salt = ff::u256_from_bytes_be(r.read_raw(32));
    p.index = r.read_u64();
    p.commitment = ff::u256_from_bytes_be(r.read_raw(32));
    p.revealed = r.read_u8() != 0;
    p.commit_epoch = r.read_u64();
    slashes_in_flight_.insert(p.index);
    pending_slashes_.push_back(std::move(p));
  }
  operator_last_action_epoch_ = r.read_u64();
  operator_phase_entered_epoch_ = r.read_u64();
  operator_consecutive_recommend_ = r.read_u64();
  operator_decisions_ = r.read_u64();
}

void WakuRlnRelayNode::apply_wal_record(std::uint8_t type,
                                        std::uint16_t shard,
                                        BytesView payload) {
  ByteReader r(payload);
  switch (static_cast<WalTag>(type)) {
    case WalTag::kNullifier: {
      const std::uint64_t epoch = r.read_u64();
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      sss::Share share;
      share.x = Fr::from_bytes_reduce(r.read_raw(32));
      share.y = Fr::from_bytes_reduce(r.read_raw(32));
      const std::uint64_t proof_fp = r.read_u64();
      // Routed by the record's shard tag into that shard's log; records
      // for shards this node no longer hosts are dropped inside.
      shards_.inject_observation(shard, epoch, nullifier, share, proof_fp);
      break;
    }
    case WalTag::kSlashCommit: {
      PendingSlash p;
      p.sk = Fr::from_bytes_reduce(r.read_raw(32));
      p.salt = ff::u256_from_bytes_be(r.read_raw(32));
      p.index = r.read_u64();
      p.commitment = ff::u256_from_bytes_be(r.read_raw(32));
      p.commit_epoch = r.read_u64();
      slashes_in_flight_.insert(p.index);
      pending_slashes_.push_back(std::move(p));
      break;
    }
    case WalTag::kSlashReveal: {
      const ff::U256 commitment = ff::u256_from_bytes_be(r.read_raw(32));
      for (PendingSlash& p : pending_slashes_) {
        if (p.commitment == commitment) p.revealed = true;
      }
      break;
    }
    case WalTag::kSlashResolve: {
      const std::uint64_t index = r.read_u64();
      std::erase_if(pending_slashes_, [index](const PendingSlash& p) {
        return p.index == index;
      });
      slashes_in_flight_.erase(index);
      break;
    }
    case WalTag::kOwnPublish:
      last_published_epoch_[shard] = r.read_u64();
      break;
    case WalTag::kReshardPhase: {
      const auto to = static_cast<shard::ReshardPhase>(r.read_u8());
      const std::uint64_t linger_until_epoch = r.read_u64();
      if (to == shard::ReshardPhase::kAnnounce) {
        const std::uint16_t target = r.read_u16();
        const std::uint16_t count = r.read_u16();
        std::vector<shard::ShardId> subscribe;
        subscribe.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) {
          subscribe.push_back(r.read_u16());
        }
        reshard_.begin(target, std::move(subscribe));
      } else {
        // Relay wiring is left to start(), which wires whatever phase
        // the replay lands on.
        apply_reshard_transition(to, linger_until_epoch, /*live=*/false);
      }
      break;
    }
    case WalTag::kNullifierNext: {
      const std::uint64_t epoch = r.read_u64();
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      sss::Share share;
      share.x = Fr::from_bytes_reduce(r.read_raw(32));
      share.y = Fr::from_bytes_reduce(r.read_raw(32));
      const std::uint64_t proof_fp = r.read_u64();
      // Incoming-generation mirror; records can only precede the
      // drop-old phase record, so the container exists at this point of
      // the replay (or the cutover never resumed — drop).
      if (next_shards_ != nullptr) {
        next_shards_->inject_observation(shard, epoch, nullifier, share,
                                         proof_fp);
      }
      break;
    }
    case WalTag::kCutoverObservation: {
      const std::uint64_t epoch = r.read_u64();
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      sss::Share share;
      share.x = Fr::from_bytes_reduce(r.read_raw(32));
      share.y = Fr::from_bytes_reduce(r.read_raw(32));
      const std::uint64_t proof_fp = r.read_u64();
      reshard_.inject_domain_observation(shard, epoch, nullifier, share,
                                         proof_fp);
      break;
    }
    case WalTag::kReshardLingerEnd:
      end_reshard_linger();
      break;
    case WalTag::kOperatorDecision: {
      // Bookkeeping only: the kReshardPhase record journaled right after
      // this one replays the actual transition, so re-running the
      // decision here would double-apply it.
      const std::uint8_t action = r.read_u8();
      const std::uint64_t epoch = r.read_u64();
      const std::uint16_t target = r.read_u16();
      if (action == 0) operator_last_action_epoch_ = epoch;
      operator_phase_entered_epoch_ = epoch;
      operator_consecutive_recommend_ = 0;
      ++operator_decisions_;
      // Re-seed the (fresh, in-memory) flight ring so a postmortem after
      // a crash still shows the operator's pre-crash decisions.
      record_flight(epoch, "operator",
                    std::string(action == 0 ? "begin" : "advance") +
                        " target=" + std::to_string(target) +
                        " (wal replay)");
      break;
    }
  }
}

void WakuRlnRelayNode::restore_from_store() {
  bool restored = false;
  if (const std::optional<Bytes> snapshot = state_store_->load_snapshot()) {
    restore_snapshot(*snapshot);
    restored = true;
  }
  // WAL records postdate the snapshot; chain events from the cursor are
  // replayed later (in start()), after which a restored pending slash can
  // meet its SlashCommitted event and resume the reveal.
  std::size_t wal_records = 0;
  state_store_->replay_wal(
      [this, &wal_records](std::uint8_t type, std::uint16_t shard,
                           BytesView payload) {
        ++wal_records;
        apply_wal_record(type, shard, payload);
      });
  if (restored || wal_records > 0) {
    // A prior life existed: this boot is a crash-restart. Record it and
    // dump the black box (what the replay re-seeded) for the operator.
    record_flight(current_epoch(), "restart",
                  "wal_records=" + std::to_string(wal_records) +
                      " cursor=" + std::to_string(event_cursor_));
    dump_postmortem("crash-restart");
  }
}

Checkpoint WakuRlnRelayNode::make_checkpoint(
    std::span<const shard::ShardId> shards) const {
  std::vector<shard::ShardWatermark> watermarks =
      shards_.nullifier_watermarks();
  if (!shards.empty()) {
    std::erase_if(watermarks, [&shards](const shard::ShardWatermark& wm) {
      return std::find(shards.begin(), shards.end(), wm.shard) ==
             shards.end();
    });
  }
  return make_group_checkpoint(group_, event_cursor_, std::move(watermarks));
}

std::optional<DeltaCheckpoint> WakuRlnRelayNode::make_delta_checkpoint(
    std::uint64_t from_cursor, const Fr& from_root,
    std::span<const shard::ShardId> shards) const {
  // The history must still cover the client's cursor and the future
  // cursor must not be ahead of us — otherwise we cannot prove the delta
  // lossless and the caller falls back to a full checkpoint.
  if (from_cursor < root_history_floor_ || from_cursor > event_cursor_) {
    return std::nullopt;
  }
  // The recorded root at from_cursor: the last transition at or before it.
  Fr root_at_from = root_at_floor_;
  std::size_t tail_begin = 0;
  for (std::size_t i = 0; i < root_history_.size(); ++i) {
    if (root_history_[i].cursor > from_cursor) break;
    root_at_from = root_history_[i].root;
    tail_begin = i + 1;
  }
  if (root_at_from != from_root) return std::nullopt;  // forked/forged base
  const std::size_t transitions = root_history_.size() - tail_begin;
  if (transitions > kDeltaRootTailMax) return std::nullopt;  // lossy tail

  DeltaCheckpoint delta;
  delta.from_cursor = from_cursor;
  delta.from_root = from_root;
  delta.to_cursor = event_cursor_;
  delta.member_count = group_.member_count();
  delta.removed_count = group_.removed_count();
  delta.nullifier_watermarks = shards_.nullifier_watermarks();
  if (!shards.empty()) {
    std::erase_if(delta.nullifier_watermarks,
                  [&shards](const shard::ShardWatermark& wm) {
                    return std::find(shards.begin(), shards.end(),
                                     wm.shard) == shards.end();
                  });
  }
  delta.root_tail.reserve(transitions);
  for (std::size_t i = tail_begin; i < root_history_.size(); ++i) {
    delta.root_tail.push_back(root_history_[i].root);
  }
  return delta;
}

}  // namespace waku::rln
