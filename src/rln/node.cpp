#include "rln/node.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "rln/keystore.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {

using chain::Transaction;
using gossipsub::ValidationResult;

namespace {

/// OS entropy for the keystore seal RNG. Deliberately NOT derived from the
/// deterministic node seed: a restarted node re-seeded deterministically
/// would replay the exact salt/nonce stream of its previous life, and with
/// multiple snapshot generations on disk an AEAD nonce reuse under one
/// derived key breaks both confidentiality and the Poly1305 tamper
/// guarantee. Sealed snapshots are documented as non-byte-reproducible, so
/// non-determinism here is free.
std::uint64_t seal_entropy() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

WakuRlnRelayNode::WakuRlnRelayNode(net::Network& network,
                                   chain::Blockchain& chain,
                                   chain::Address contract, NodeConfig config,
                                   std::uint64_t seed)
    : network_(network),
      chain_(chain),
      contract_(contract),
      config_(config),
      rng_(seed),
      seal_rng_(seal_entropy()),
      identity_(Identity::generate(rng_)),
      relay_(network, config.gossip, config.score, seed),
      group_(config.tree_depth, config.tree_mode),
      // Per-node seed for the batch verifier's RLC weights: senders must
      // not be able to predict another node's weight stream.
      validator_(zksnark::rln_keypair(config.tree_depth).vk, group_,
                 config.validator, seed ^ 0x52C4A55E9D1ULL) {
  group_.set_own_identity(identity_);

  if (!config_.persist_dir.empty()) {
    try {
      state_store_.emplace(config_.persist_dir, config_.persist);
      restore_from_store();
    } catch (...) {
      // The relay registered itself with the network in the member-init
      // list; a restore failure (fail-closed keystore, corrupt store) must
      // not leave a pointer to the about-to-be-destroyed router behind.
      network_.remove_node(relay_.node_id());
      throw;
    }
    state_store_->set_snapshot_provider([this] { return serialize_state(); });
    // Observed shares exist only in transit — journal them the moment the
    // pipeline records one, so a crash cannot blind us to double-signals.
    pipeline().set_observe_hook([this](std::uint64_t epoch,
                                       const Fr& nullifier,
                                       const sss::Share& share,
                                       std::uint64_t proof_fp) {
      ByteWriter w;
      w.write_u64(epoch);
      w.write_raw(nullifier.to_bytes_be());
      w.write_raw(share.x.to_bytes_be());
      w.write_raw(share.y.to_bytes_be());
      w.write_u64(proof_fp);
      journal(WalTag::kNullifier, w.data());
    });
  }
}

void WakuRlnRelayNode::start() {
  started_ = true;
  // All relayed traffic funnels through the staged validation pipeline;
  // with gossip validation batching enabled, whole windows share one
  // RLC-aggregated Groth16 check.
  relay_.set_batch_validator(
      [this](const std::vector<net::NodeId>&,
             const std::vector<net::TimeMs>& received_at,
             const std::vector<WakuMessage>& messages) {
        const std::vector<ValidationOutcome> outcomes =
            validator_.validate_batch(messages, received_at);
        std::vector<ValidationResult> results;
        results.reserve(outcomes.size());
        for (const ValidationOutcome& outcome : outcomes) {
          switch (outcome.verdict) {
            case Verdict::kAccept:
              results.push_back(ValidationResult::kAccept);
              continue;
            case Verdict::kIgnoreEpochGap:
            case Verdict::kIgnoreDuplicate:
              results.push_back(ValidationResult::kIgnore);
              continue;
            case Verdict::kRejectSpam:
              // Double-signal: the recovered sk is slashing material
              // (§III-F). Same-x equivocation yields none to recover.
              if (outcome.recovered_sk.has_value()) {
                trigger_slash(*outcome.recovered_sk);
              }
              results.push_back(ValidationResult::kReject);
              continue;
            case Verdict::kRejectStaleRoot:
              // With windowed validation a proof can go stale while it
              // sits buffered (membership churn between arrival and
              // flush) — not the sender's fault, so drop it without a
              // score penalty. Unbatched validation keeps the strict
              // reject: there the root was stale on arrival.
              results.push_back(config_.gossip.validation_batch_max > 1
                                    ? ValidationResult::kIgnore
                                    : ValidationResult::kReject);
              continue;
            case Verdict::kRejectNoProof:
            case Verdict::kRejectBadProof:
              results.push_back(ValidationResult::kReject);
              continue;
          }
          results.push_back(ValidationResult::kReject);
        }
        return results;
      });

  relay_.subscribe([this](const WakuMessage& msg) {
    ++stats_.delivered;
    if (config_.enable_store) {
      store_.archive(msg, network_.sim().now());
    }
    if (handler_) handler_(msg);
  });

  // Durable nodes resume the contract event stream from their replay
  // cursor (everything older is already folded into the restored state);
  // ephemeral nodes keep the historical live-only behaviour.
  if (state_store_.has_value()) {
    chain_.replay_events(event_cursor_,
                         [this](const chain::Event& ev) {
                           handle_chain_event(ev);
                         });
  }
  chain_subscription_ = chain_.subscribe_events(
      [this](const chain::Event& ev) { handle_chain_event(ev); });

  // Periodic upkeep: nullifier-log GC and pending-slash expiry, once per
  // epoch.
  upkeep_task_ = network_.sim().schedule_every(
      config_.validator.epoch.epoch_length_ms, [this] {
        validator_.gc(network_.local_time(node_id()));
        expire_pending_slashes();
      });

  relay_.start();
}

void WakuRlnRelayNode::shutdown() {
  if (!started_) return;
  started_ = false;
  if (upkeep_task_ != 0) {
    network_.sim().cancel(upkeep_task_);
    upkeep_task_ = 0;
  }
  chain_.unsubscribe_events(chain_subscription_);
  relay_.stop();
  network_.remove_node(relay_.node_id());
}

void WakuRlnRelayNode::register_membership() {
  Transaction tx;
  tx.from = config_.account;
  tx.to = contract_;
  tx.method = "register";
  tx.calldata = identity_.pk_bytes();
  tx.value = chain_.contract_at<chain::RlnMembershipContract>(contract_)
                 .deposit();
  chain_.submit(std::move(tx));
}

std::uint64_t WakuRlnRelayNode::current_epoch() const {
  return config_.validator.epoch.epoch_at(network_.local_time(node_id()));
}

WakuMessage WakuRlnRelayNode::build_message(Bytes payload,
                                            const std::string& content_topic,
                                            std::uint64_t epoch) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  zksnark::RlnProverInput input;
  input.sk = identity_.sk;
  input.path = group_.own_path();
  input.x = message_hash(msg);
  input.epoch = Fr::from_u64(epoch);

  zksnark::RlnCircuit circuit = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(config_.tree_depth);
  const zksnark::Proof proof = zksnark::prove(
      kp.pk, circuit.builder.cs(), circuit.builder.assignment(), rng_);

  RateLimitProof bundle;
  bundle.share_x = circuit.publics.x;
  bundle.share_y = circuit.publics.y;
  bundle.nullifier = circuit.publics.nullifier;
  bundle.epoch = epoch;
  bundle.root = circuit.publics.root;
  bundle.proof = proof;
  attach_proof(msg, bundle);
  return msg;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::try_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  const std::uint64_t epoch = current_epoch();
  if (last_published_epoch_.has_value() && *last_published_epoch_ == epoch) {
    ++stats_.publish_rate_limited;
    return PublishStatus::kRateLimited;  // honest 1-message-per-epoch limit
  }
  last_published_epoch_ = epoch;
  // Journaled before the message leaves: a node that crashes after
  // publishing and forgets it published would double-signal against
  // itself on restart — and forfeit its own stake.
  ByteWriter w;
  w.write_u64(epoch);
  journal(WalTag::kOwnPublish, w.data());
  relay_.publish(build_message(std::move(payload), content_topic, epoch));
  ++stats_.published;
  return PublishStatus::kOk;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::force_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  relay_.publish(
      build_message(std::move(payload), content_topic, current_epoch()));
  ++stats_.published;
  return PublishStatus::kOk;
}

void WakuRlnRelayNode::publish_with_invalid_proof(Bytes payload) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof junk;
  junk.share_x = message_hash(msg);
  junk.share_y = Fr::random(rng_);
  junk.nullifier = Fr::random(rng_);
  junk.epoch = current_epoch();
  junk.root = group_.root();  // recent root, but the proof is garbage
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  junk.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, junk);
  relay_.publish(msg);
  ++stats_.published;
}

void WakuRlnRelayNode::publish_with_stale_root(Bytes payload) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof bundle;
  bundle.share_x = message_hash(msg);
  bundle.share_y = Fr::random(rng_);
  bundle.nullifier = Fr::random(rng_);
  bundle.epoch = current_epoch();
  // A root no validator has in its window: the message must die in the
  // cheap root stage (kRejectStaleRoot), never reaching the verifier.
  bundle.root = Fr::random(rng_);
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  bundle.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, bundle);
  relay_.publish(msg);
  ++stats_.published;
}

bool WakuRlnRelayNode::force_publish_split(Bytes payload_a, Bytes payload_b) {
  if (!is_registered()) return false;
  // Disjoint targets: prefer the mesh (that is who would relay), fall back
  // to raw neighbors before the mesh has formed.
  std::vector<net::NodeId> peers =
      relay_.router().mesh_peers(relay_.pubsub_topic());
  if (peers.size() < 2) peers = network_.neighbors(node_id());
  if (peers.size() < 2) return false;

  const std::uint64_t epoch = current_epoch();
  const WakuMessage msg_a =
      build_message(std::move(payload_a), "/waku/2/default-content/proto",
                    epoch);
  const WakuMessage msg_b =
      build_message(std::move(payload_b), "/waku/2/default-content/proto",
                    epoch);
  const std::size_t half = peers.size() / 2;
  relay_.publish_to(msg_a,
                    std::span<const net::NodeId>(peers.data(), half));
  relay_.publish_to(msg_b, std::span<const net::NodeId>(peers.data() + half,
                                                        peers.size() - half));
  stats_.published += 2;
  return true;
}

void WakuRlnRelayNode::trigger_slash(const Fr& spammer_sk) {
  const Fr pk = hash::poseidon1(spammer_sk);
  const std::optional<std::uint64_t> index = group_.index_of(pk);
  if (!index.has_value()) return;  // unknown/already slashed, or light node
  if (slashes_in_flight_.contains(*index)) return;
  slashes_in_flight_.insert(*index);

  PendingSlash pending;
  pending.sk = spammer_sk;
  pending.index = *index;
  pending.salt = ff::U256{rng_.next_u64(), rng_.next_u64(), rng_.next_u64(),
                          rng_.next_u64()};
  pending.commitment = chain::RlnMembershipContract::make_slash_commitment(
      spammer_sk, pending.salt, config_.account);
  pending.commit_epoch = current_epoch();

  // Write-ahead: the salt exists nowhere else. A crash between this
  // commit and the reveal must not forfeit the slashing reward (the
  // journaled entry lets the restarted node reveal).
  ByteWriter w;
  w.write_raw(pending.sk.to_bytes_be());
  w.write_raw(ff::u256_to_bytes_be(pending.salt));
  w.write_u64(pending.index);
  w.write_raw(ff::u256_to_bytes_be(pending.commitment));
  w.write_u64(pending.commit_epoch);
  journal(WalTag::kSlashCommit, w.data());

  Transaction commit;
  commit.from = config_.account;
  commit.to = contract_;
  commit.method = "commit_slash";
  commit.calldata = ff::u256_to_bytes_be(pending.commitment);
  chain_.submit(std::move(commit));
  ++stats_.slash_commits;
  pending_slashes_.push_back(pending);
}

void WakuRlnRelayNode::resolve_slash(std::uint64_t index) {
  const std::size_t erased = std::erase_if(
      pending_slashes_,
      [index](const PendingSlash& p) { return p.index == index; });
  const bool in_flight = slashes_in_flight_.erase(index) > 0;
  if (erased > 0 || in_flight) {
    ByteWriter w;
    w.write_u64(index);
    journal(WalTag::kSlashResolve, w.data());
  }
}

void WakuRlnRelayNode::expire_pending_slashes() {
  const std::uint64_t epoch = current_epoch();
  std::vector<std::uint64_t> expired;
  for (const PendingSlash& pending : pending_slashes_) {
    if (epoch_distance(epoch, pending.commit_epoch) >
        config_.slash_expiry_epochs) {
      expired.push_back(pending.index);
    }
  }
  for (const std::uint64_t index : expired) {
    ++stats_.slashes_expired;
    resolve_slash(index);
  }
}

void WakuRlnRelayNode::handle_chain_event(const chain::Event& event) {
  ++event_cursor_;
  group_.on_event(event);

  if (event.name == "SlashCommitted") {
    // Our commitment is mined: submit the reveal (it lands in a later
    // block, satisfying the contract's maturity check). During restart
    // replay this is exactly where a crash-interrupted commit-reveal
    // resumes: the journaled pending entry meets its re-replayed
    // SlashCommitted event.
    for (PendingSlash& pending : pending_slashes_) {
      if (pending.revealed || event.topics[0] != pending.commitment) continue;
      pending.revealed = true;

      ByteWriter w;
      w.write_raw(pending.sk.to_bytes_be());
      w.write_raw(ff::u256_to_bytes_be(pending.salt));
      w.write_u64(pending.index);
      // Attach the pre-removal auth path for partial-view peers ([18]).
      if (group_.mode() == TreeMode::kFullTree) {
        w.write_raw(merkle::serialize_path(group_.path_of(pending.index)));
      }
      Transaction reveal;
      reveal.from = config_.account;
      reveal.to = contract_;
      reveal.method = "reveal_slash";
      reveal.calldata = std::move(w).take();
      chain_.submit(std::move(reveal));
      ++stats_.slash_reveals;

      // Journaled only after the submit: a crash in between makes the
      // restarted node re-submit the reveal (the contract rejects the
      // duplicate — cheap), whereas journaling first would record a
      // reveal that never reached the chain and forfeit the reward.
      ByteWriter j;
      j.write_raw(ff::u256_to_bytes_be(pending.commitment));
      journal(WalTag::kSlashReveal, j.data());
    }
  } else if (event.name == "MemberSlashed") {
    resolve_slash(event.topics[0].limb[0]);
    // The third topic names the rewarded slasher.
    if (event.topics.size() >= 3 &&
        event.topics[2] == config_.account.to_u256()) {
      ++stats_.slash_rewards;
    }
  } else if (event.name == "MemberWithdrawn") {
    // A withdraw that races our commit-reveal would otherwise leave the
    // index blocked in slashes_in_flight_ forever.
    resolve_slash(event.topics[0].limb[0]);
  }
}

// -- Durable state -----------------------------------------------------------

void WakuRlnRelayNode::journal(WalTag tag, BytesView payload) {
  if (state_store_.has_value()) {
    state_store_->append(static_cast<std::uint8_t>(tag), payload);
  }
}

void WakuRlnRelayNode::force_snapshot() {
  if (state_store_.has_value()) state_store_->force_snapshot();
}

Bytes WakuRlnRelayNode::serialize_state() const {
  ByteWriter w;
  w.write_u8(2);  // version
  // The identity secret rides in the snapshot so a restart is
  // self-contained. With keystore_password set it travels sealed under the
  // ChaCha20-Poly1305 keystore (rln/keystore.hpp) — leaking a snapshot
  // file then leaks a stake-bearing sk only through the password. Sealing
  // draws a fresh salt/nonce per snapshot, so sealed snapshots are not
  // byte-reproducible (plaintext ones still are).
  if (config_.keystore_password.empty()) {
    w.write_u8(0);  // plaintext sk
    w.write_raw(identity_.sk.to_bytes_be());
  } else {
    w.write_u8(1);  // keystore-sealed credential
    MembershipCredential credential;
    credential.identity = identity_;
    credential.member_index = group_.own_index().value_or(0);
    w.write_bytes(keystore_seal(credential, config_.keystore_password,
                                seal_rng_));
  }
  w.write_u64(event_cursor_);
  // Sealed snapshots must not leak the sk through the group blob either —
  // the credential above is its only (encrypted) carrier.
  w.write_bytes(group_.serialize(
      /*include_identity=*/config_.keystore_password.empty()));
  w.write_bytes(validator_.pipeline().serialize_state());
  w.write_u8(last_published_epoch_.has_value() ? 1 : 0);
  w.write_u64(last_published_epoch_.value_or(0));
  w.write_u64(stats_.published);
  w.write_u64(stats_.publish_rate_limited);
  w.write_u64(stats_.delivered);
  w.write_u64(stats_.slash_commits);
  w.write_u64(stats_.slash_reveals);
  w.write_u64(stats_.slash_rewards);
  w.write_u64(stats_.slashes_expired);
  w.write_u32(static_cast<std::uint32_t>(pending_slashes_.size()));
  for (const PendingSlash& p : pending_slashes_) {
    w.write_raw(p.sk.to_bytes_be());
    w.write_raw(ff::u256_to_bytes_be(p.salt));
    w.write_u64(p.index);
    w.write_raw(ff::u256_to_bytes_be(p.commitment));
    w.write_u8(p.revealed ? 1 : 0);
    w.write_u64(p.commit_epoch);
  }
  return std::move(w).take();
}

void WakuRlnRelayNode::restore_snapshot(BytesView payload) {
  ByteReader r(payload);
  WAKU_EXPECTS(r.read_u8() == 2);
  const std::uint8_t sealed = r.read_u8();
  if (sealed == 0) {
    identity_ = Identity::from_secret(Fr::from_bytes_reduce(r.read_raw(32)));
  } else {
    // Fail closed: without the right password there is no identity to run
    // as, and booting with a fresh one would silently fork the membership.
    const Bytes blob = r.read_bytes();
    const std::optional<MembershipCredential> credential =
        keystore_open(blob, config_.keystore_password);
    if (!credential.has_value()) {
      throw std::runtime_error(
          "snapshot keystore: wrong password or tampered credential "
          "(refusing to restore)");
    }
    identity_ = credential->identity;
  }
  event_cursor_ = r.read_u64();
  const Bytes group_bytes = r.read_bytes();
  group_.restore(group_bytes);
  if (sealed != 0) {
    // The group blob was serialized identity-free; re-inject the unsealed
    // identity (the restored own_index is kept as-is).
    group_.set_own_identity(identity_);
  }
  const Bytes pipeline_bytes = r.read_bytes();
  validator_.pipeline().restore_state(pipeline_bytes);
  const bool has_last_published = r.read_u8() != 0;
  const std::uint64_t last_published = r.read_u64();
  last_published_epoch_.reset();
  if (has_last_published) last_published_epoch_ = last_published;
  stats_ = NodeStats{};
  stats_.published = r.read_u64();
  stats_.publish_rate_limited = r.read_u64();
  stats_.delivered = r.read_u64();
  stats_.slash_commits = r.read_u64();
  stats_.slash_reveals = r.read_u64();
  stats_.slash_rewards = r.read_u64();
  stats_.slashes_expired = r.read_u64();
  pending_slashes_.clear();
  slashes_in_flight_.clear();
  const std::uint32_t pending_count = r.read_u32();
  for (std::uint32_t i = 0; i < pending_count; ++i) {
    PendingSlash p;
    p.sk = Fr::from_bytes_reduce(r.read_raw(32));
    p.salt = ff::u256_from_bytes_be(r.read_raw(32));
    p.index = r.read_u64();
    p.commitment = ff::u256_from_bytes_be(r.read_raw(32));
    p.revealed = r.read_u8() != 0;
    p.commit_epoch = r.read_u64();
    slashes_in_flight_.insert(p.index);
    pending_slashes_.push_back(std::move(p));
  }
}

void WakuRlnRelayNode::apply_wal_record(std::uint8_t type,
                                        BytesView payload) {
  ByteReader r(payload);
  switch (static_cast<WalTag>(type)) {
    case WalTag::kNullifier: {
      const std::uint64_t epoch = r.read_u64();
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      sss::Share share;
      share.x = Fr::from_bytes_reduce(r.read_raw(32));
      share.y = Fr::from_bytes_reduce(r.read_raw(32));
      const std::uint64_t proof_fp = r.read_u64();
      pipeline().inject_observation(epoch, nullifier, share, proof_fp);
      break;
    }
    case WalTag::kSlashCommit: {
      PendingSlash p;
      p.sk = Fr::from_bytes_reduce(r.read_raw(32));
      p.salt = ff::u256_from_bytes_be(r.read_raw(32));
      p.index = r.read_u64();
      p.commitment = ff::u256_from_bytes_be(r.read_raw(32));
      p.commit_epoch = r.read_u64();
      slashes_in_flight_.insert(p.index);
      pending_slashes_.push_back(std::move(p));
      break;
    }
    case WalTag::kSlashReveal: {
      const ff::U256 commitment = ff::u256_from_bytes_be(r.read_raw(32));
      for (PendingSlash& p : pending_slashes_) {
        if (p.commitment == commitment) p.revealed = true;
      }
      break;
    }
    case WalTag::kSlashResolve: {
      const std::uint64_t index = r.read_u64();
      std::erase_if(pending_slashes_, [index](const PendingSlash& p) {
        return p.index == index;
      });
      slashes_in_flight_.erase(index);
      break;
    }
    case WalTag::kOwnPublish:
      last_published_epoch_ = r.read_u64();
      break;
  }
}

void WakuRlnRelayNode::restore_from_store() {
  if (const std::optional<Bytes> snapshot = state_store_->load_snapshot()) {
    restore_snapshot(*snapshot);
  }
  // WAL records postdate the snapshot; chain events from the cursor are
  // replayed later (in start()), after which a restored pending slash can
  // meet its SlashCommitted event and resume the reveal.
  state_store_->replay_wal([this](std::uint8_t type, BytesView payload) {
    apply_wal_record(type, payload);
  });
}

Checkpoint WakuRlnRelayNode::make_checkpoint() const {
  return make_group_checkpoint(group_, event_cursor_,
                               validator_.log().stats().min_epoch);
}

}  // namespace waku::rln
