// WakuRlnRelayNode: a complete WAKU-RLN-RELAY peer (paper §III).
//
// Composition per the paper's architecture:
//   * WAKU-RELAY transport (gossipsub meshes) for messages — one mesh per
//     subscribed relay shard (src/shard): content topics map
//     deterministically onto shard-qualified pubsub topics;
//   * membership via the on-chain contract (registration, §III-B);
//   * local identity-commitment tree synced from contract events (§III-C),
//     shared across shards — membership is global;
//   * epoch-based external nullifier (§III-D);
//   * proof-bundle generation on publish (§III-E);
//   * routing-time validation, nullifier log, and slashing with
//     commit-reveal on double-signals (§III-F) — enforced PER SHARD: each
//     subscribed shard runs its own staged ValidationPipeline (own
//     nullifier log, own rolling root cache, own batch windows), so the
//     rate-limit domain is (member, epoch, shard) and a flood on one
//     shard cannot delay validation on another;
//   * optional 13/WAKU2-STORE archive;
//   * optional durable state (src/persist): WAL + snapshots so a restart
//     restores the tree, root window, per-shard nullifier logs (WAL
//     records are shard-tagged), rate-limit state, and in-flight
//     commit-reveal slashes, then resumes the contract event stream from a
//     replay cursor instead of genesis.
//
// Attacker hooks (force_publish / publish_with_invalid_proof) exist so the
// spam experiments can drive misbehaving-but-registered peers through the
// exact same code paths.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/rln_contract.hpp"
#include "obs/config.hpp"
#include "obs/fleet.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "persist/state_store.hpp"
#include "rln/checkpoint.hpp"
#include "rln/group_manager.hpp"
#include "rln/identity.hpp"
#include "rln/validator.hpp"
#include "shard/reshard.hpp"
#include "shard/sharded_validator.hpp"
#include "waku/relay.hpp"
#include "waku/store.hpp"

namespace waku::rln {

/// Default content topic of honest publishes.
inline const std::string kDefaultContentTopic =
    "/waku/2/default-content/proto";

/// The autonomous operator loop: closes observe -> decide -> act inside
/// the node's own upkeep tick. While stable it watches
/// ShardLoadTracker::recommend() (plus the self-monitor AnomalyEngine's
/// p95-budget signal) and calls begin_reshard() once the recommendation
/// holds for `trip_epochs` consecutive epochs and the cooldown since the
/// last action has passed; while a cutover runs it calls
/// advance_reshard() after dwelling `phase_dwell_epochs` in each phase.
/// Every decision is journaled to the WAL (kOperatorDecision) before it
/// acts and recorded to the flight recorder, so a crash-restart resumes
/// the loop's bookkeeping exactly and a deterministic run is
/// byte-identical.
struct OperatorConfig {
  bool enabled = false;
  /// Minimum epochs between two operator-initiated reshard begins.
  std::uint64_t cooldown_epochs = 8;
  /// Consecutive recommending epochs before begin_reshard fires — the
  /// hysteresis that keeps one bursty window from splitting the fleet.
  std::size_t trip_epochs = 2;
  /// Epochs to dwell in each cutover phase before advancing. Must give
  /// every peer's own loop time to reach the same phase (their upkeep
  /// ticks run on the same epoch cadence, so skew is at most one epoch).
  std::uint64_t phase_dwell_epochs = 2;
  /// New-generation subscription for an operator-initiated begin; the
  /// default (unset) subscribes every new shard. Deployments that shard
  /// hosting across nodes install a per-node chooser
  /// (set_operator_subscribe_chooser), which survives harness restarts
  /// via the node hook.
  std::function<std::vector<shard::ShardId>(std::uint16_t)>
      subscribe_chooser;
};

struct NodeConfig {
  std::size_t tree_depth = 20;
  TreeMode tree_mode = TreeMode::kFullTree;
  ValidatorConfig validator;
  chain::Address account;      ///< chain account paying gas/deposit
  bool enable_store = false;   ///< archive delivered messages (WAKU2-STORE)
  gossipsub::GossipSubConfig gossip;
  gossipsub::PeerScoreConfig score;

  /// Relay sharding layout plus this node's subscription subset. The
  /// default (1 shard, subscribe-all) reproduces the paper's single
  /// global mesh and rate-limit domain exactly.
  shard::ShardConfig shards;

  /// Validation worker-pool shape, applied to every validator container
  /// this node builds (both generations across reshard cutovers). The
  /// default is deterministic single-threaded execution — the simulator
  /// and tier-1 tests stay bit-for-bit reproducible; benches and soak
  /// deployments opt into real cores here.
  ParallelismConfig parallel;

  /// Durable-state directory; empty keeps the node fully ephemeral (the
  /// pre-persistence behaviour). With a directory set, the node opens a
  /// persist::StateStore there, restores on construction, and journals /
  /// snapshots during operation.
  std::string persist_dir;
  /// Non-empty: the identity secret key rides in snapshots sealed under
  /// this password with the ChaCha20-Poly1305 keystore (rln/keystore.hpp)
  /// instead of plaintext. Restore fails closed: a wrong password or a
  /// tampered blob aborts node construction rather than booting with a
  /// guessed identity.
  std::string keystore_password;
  /// Compaction sized for million-leaf groups: besides the record-count
  /// policy, compact whenever the WAL outgrows 64 MiB. A 1M-leaf full
  /// tree snapshots at ~67 MB, and batched registration events make WAL
  /// records arbitrarily large — a byte cap keeps restart replay bounded
  /// by roughly one snapshot's worth of bytes no matter the event mix.
  persist::StateStoreConfig persist{.snapshot_every_bytes = 64ull << 20};
  /// A journaled commit-reveal slash whose reveal never lands (lost tx,
  /// front-run loss, withdraw race) is dropped after this many epochs so
  /// the index can be re-slashed.
  std::uint64_t slash_expiry_epochs = 16;

  /// In-node telemetry (src/obs): stage-latency histograms, sampled
  /// message-lifecycle spans, Prometheus/JSON exposition. The default
  /// clock is the node's own virtual time (net::Network::local_time), so
  /// enabling telemetry never perturbs deterministic runs.
  obs::ObsConfig obs;

  /// Load-tracker thresholds feeding recommend(); defaults match the
  /// historical default-constructed tracker.
  shard::ShardLoadTracker::Config load_tracker;

  /// The autonomous reshard operator (off by default — existing
  /// deployments keep driving begin/advance_reshard themselves).
  OperatorConfig operator_loop;
};

struct NodeStats {
  std::uint64_t published = 0;
  std::uint64_t publish_rate_limited = 0;  ///< honest self-throttle hits
  std::uint64_t publish_wrong_shard = 0;   ///< publishes on unhosted shards
  std::uint64_t delivered = 0;
  std::uint64_t slash_commits = 0;
  std::uint64_t slash_reveals = 0;
  std::uint64_t slash_rewards = 0;  ///< MemberSlashed where we were payee
  std::uint64_t slashes_expired = 0;  ///< pending slashes dropped by expiry
};

/// One coherent read of every counter family the node maintains — what
/// metrics_{text,json}() render, and what sim::HarnessProbe consumes
/// instead of re-deriving the same sums from subsystem accessors.
struct NodeTelemetrySnapshot {
  gossipsub::RouterStats router;
  NodeStats node;
  ValidatorStats pipeline;  ///< aggregate across subscribed shards
  ExecutorStats executor;
  /// Per-shard pipeline stats, ordered by shard id.
  std::vector<std::pair<shard::ShardId, ValidatorStats>> per_shard;
  std::size_t graylisted = 0;  ///< peers currently below the graylist bar
  std::size_t pending_validation = 0;  ///< messages buffered in windows
  obs::TraceCollectorStats trace;
};

class WakuRlnRelayNode {
 public:
  enum class PublishStatus {
    kOk,
    kNotRegistered,
    kRateLimited,
    kShardNotSubscribed,  ///< content topic maps to a shard we don't host
  };

  using MessageHandler = std::function<void(const WakuMessage&)>;

  WakuRlnRelayNode(net::Network& network, chain::Blockchain& chain,
                   chain::Address contract, NodeConfig config,
                   std::uint64_t seed);

  /// Installs the per-shard validators, subscribes to every subscribed
  /// shard's pubsub topic and the chain event feed (resuming from the
  /// persisted replay cursor when durable state was restored), and starts
  /// gossip heartbeats. Call once.
  void start();

  /// Graceful detach: cancels scheduled work, drops the chain
  /// subscription, and removes the node from the network. Durable state
  /// is NOT flushed beyond what the WAL already holds — by design, so the
  /// crash-restart suite exercises the same path a kill -9 would.
  void shutdown();

  /// Submits the registration transaction (pk + deposit, §III-B). The
  /// membership becomes usable once the block is mined and the
  /// MemberRegistered event round-trips (the §IV-A registration delay).
  void register_membership();
  [[nodiscard]] bool is_registered() const {
    return group_.own_index().has_value();
  }

  /// Honest publish: refuses to exceed one message per epoch per shard
  /// (§III-E; the shard is derived from the content topic).
  PublishStatus try_publish(Bytes payload,
                            const std::string& content_topic =
                                kDefaultContentTopic);

  /// Spammer publish: generates a *valid* proof but ignores the local rate
  /// limit — the double-signaling attack the scheme exists to punish.
  PublishStatus force_publish(Bytes payload,
                              const std::string& content_topic =
                                  kDefaultContentTopic);

  /// Resource-exhaustion attacker: attaches a garbage proof.
  void publish_with_invalid_proof(Bytes payload,
                                  const std::string& content_topic =
                                      kDefaultContentTopic);

  /// Stale-root attacker: a well-formed bundle whose tree root is outside
  /// every validator's rolling root window — dies in the O(1) root stage,
  /// before the SNARK verifier can be made to spend cycles.
  void publish_with_stale_root(Bytes payload,
                               const std::string& content_topic =
                                   kDefaultContentTopic);

  /// Split-equivocation attacker (§III-F evasion attempt): two conflicting
  /// messages for the SAME epoch, each shown to a disjoint half of the
  /// mesh neighbors, so no single first-hop peer sees both shares. Relay
  /// propagation still brings the halves together at interior peers, which
  /// recover sk and slash. Returns false when not registered or fewer than
  /// two peers are reachable.
  bool force_publish_split(Bytes payload_a, Bytes payload_b);

  /// Registers a callback for delivered (validated) messages.
  void set_message_handler(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  // -- Sharding --------------------------------------------------------------

  [[nodiscard]] const shard::ShardMap& shard_map() const {
    return shards_.map();
  }
  [[nodiscard]] const std::vector<shard::ShardId>& subscribed_shards() const {
    return shards_.subscribed();
  }
  /// The shard-qualified pubsub topic `content_topic` routes onto.
  [[nodiscard]] std::string shard_topic_for(
      const std::string& content_topic) const {
    return shards_.map().pubsub_topic(shards_.shard_of(content_topic));
  }

  // -- Live reshard (shard/reshard.hpp) --------------------------------------

  /// Starts a staged generation cutover to `target_num_shards` (a
  /// multiple of the current count — the cutover runs on split layouts)
  /// with `new_subscribe` as this node's new-generation subscription
  /// (empty = all shards). Enters kAnnounce and journals the transition
  /// (WAL v3); topology is untouched until advance_reshard(). Returns
  /// false when a cutover is already running, the previous cutover's
  /// linger window has not expired, or the layout is invalid.
  bool begin_reshard(std::uint16_t target_num_shards,
                     std::vector<shard::ShardId> new_subscribe = {});

  /// Advances the cutover one phase: announce -> overlap (dual-subscribe
  /// both generations' meshes, dual-generation RLN enforcement on) ->
  /// drain (publishes route to the new generation) -> drop-old (old
  /// meshes unsubscribed; domain logs and the domain-keyed quota linger
  /// for Thr+1 epochs, then the per-shard quota re-keys — see
  /// end_reshard_linger). Each transition is journaled before it takes
  /// effect, so a crash mid-reshard restarts into the correct phase
  /// fail-closed. Returns false when no cutover is running.
  bool advance_reshard();

  [[nodiscard]] shard::ReshardPhase reshard_phase() const {
    return reshard_.phase();
  }
  [[nodiscard]] const shard::ReshardCoordinator& reshard() const {
    return reshard_;
  }
  /// The incoming generation's validator during announce/overlap/drain.
  [[nodiscard]] shard::ShardedValidator* next_validator() {
    return next_shards_ ? next_shards_.get() : nullptr;
  }

  /// Per-shard load samples feed this every upkeep tick; recommend() on
  /// it answers "should this deployment reshard, and to how many shards".
  [[nodiscard]] shard::ShardLoadTracker& load_tracker() {
    return load_tracker_;
  }

  // -- Autonomous operator loop ----------------------------------------------

  /// Installs (or replaces) the per-node new-generation subscription
  /// chooser the operator loop passes to begin_reshard. Harness-driven
  /// fleets install it from the node hook so it survives kill/restart.
  void set_operator_subscribe_chooser(
      std::function<std::vector<shard::ShardId>(std::uint16_t)> chooser) {
    config_.operator_loop.subscribe_chooser = std::move(chooser);
  }
  /// Operator decisions taken (begin + advance), including WAL-replayed
  /// ones — a restarted node resumes the count, not restarts it.
  [[nodiscard]] std::uint64_t operator_decisions() const {
    return operator_decisions_;
  }
  [[nodiscard]] std::uint64_t operator_last_action_epoch() const {
    return operator_last_action_epoch_;
  }

  /// Overlap-window attacker hook: a valid-proof publish forced onto a
  /// specific generation's mesh (next when `use_next_generation` and a
  /// cutover is running, current otherwise), ignoring the local rate
  /// limit. The cutover campaign uses old/new same-epoch pairs to attack
  /// the migration window; dual-generation enforcement must fold them
  /// into one quota and slash.
  PublishStatus force_publish_generation(Bytes payload,
                                         const std::string& content_topic,
                                         bool use_next_generation);

  // -- Durable state ---------------------------------------------------------

  /// Writes a snapshot now (no-op for ephemeral nodes).
  void force_snapshot();
  /// Contract events applied so far — the replay cursor persisted in
  /// snapshots and resumed from on restart.
  [[nodiscard]] std::uint64_t event_cursor() const { return event_cursor_; }
  [[nodiscard]] bool persistent() const { return state_store_.has_value(); }
  [[nodiscard]] const persist::StateStore* state_store() const {
    return state_store_.has_value() ? &*state_store_ : nullptr;
  }
  /// Pending commit-reveal slashes currently journaled (tests/operators).
  [[nodiscard]] std::size_t pending_slash_count() const {
    return pending_slashes_.size();
  }
  /// Canonical serialization of the full durable state — what snapshots
  /// hold; restart tests assert byte-identity on it.
  [[nodiscard]] Bytes serialize_state() const;

  /// Exports the unsigned light-client bootstrap checkpoint (full-tree
  /// nodes only; the lightpush service signs and serves it). `shards`
  /// filters the per-shard nullifier watermarks to the requesting client's
  /// subscription subset; empty keeps every hosted shard's watermark.
  [[nodiscard]] Checkpoint make_checkpoint(
      std::span<const shard::ShardId> shards = {}) const;

  /// Builds a delta checkpoint fast-forwarding a client from (from_cursor,
  /// from_root) to this node's current state, or nullopt when the retained
  /// root-transition history cannot prove the delta lossless — cursor
  /// older than the history floor, claimed root not matching the recorded
  /// root at that cursor, or more transitions since than kDeltaRootTailMax
  /// — in which case the caller serves a full checkpoint (fail-closed).
  [[nodiscard]] std::optional<DeltaCheckpoint> make_delta_checkpoint(
      std::uint64_t from_cursor, const Fr& from_root,
      std::span<const shard::ShardId> shards = {}) const;

  [[nodiscard]] net::NodeId node_id() const { return relay_.node_id(); }
  [[nodiscard]] const Identity& identity() const { return identity_; }
  [[nodiscard]] const chain::Address& account() const {
    return config_.account;
  }
  [[nodiscard]] std::uint64_t current_epoch() const;

  [[nodiscard]] WakuRelay& relay() { return relay_; }
  [[nodiscard]] GroupManager& group() { return group_; }
  /// The per-shard validation container: aggregate stats(), the default
  /// shard's log() (single-shard deployments see exactly the historical
  /// behaviour), and per-shard pipeline access.
  [[nodiscard]] shard::ShardedValidator& validator() { return shards_; }
  [[nodiscard]] const shard::ShardedValidator& validator() const {
    return shards_;
  }
  /// The default shard's staged validation pipeline — the single-shard
  /// compatibility surface; shard-aware callers use
  /// validator().pipeline(shard).
  [[nodiscard]] ValidationPipeline& pipeline() {
    return shards_.default_pipeline();
  }
  [[nodiscard]] WakuStore& store() { return store_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }

  // -- Observability (src/obs) -----------------------------------------------

  /// Prometheus text exposition: stage/window latency histograms (from
  /// the lock-cheap registry), per-stage p50/p95/p99 quantile gauges,
  /// verdict-reason counters per shard, executor lane queue-wait /
  /// service-time histograms and depth high-watermarks, nullifier-log
  /// gauges (including per-stripe contention), router/node counters, and
  /// trace-collector counters. Lintable by scripts/check_metrics_format.py.
  [[nodiscard]] std::string metrics_text() const;
  /// The same data as one JSON object (histogram quantiles included).
  [[nodiscard]] std::string metrics_json() const;
  /// Coherent counter snapshot across every subsystem (HarnessProbe's
  /// input; also the payload of the epoch-boundary health snapshot).
  [[nodiscard]] NodeTelemetrySnapshot telemetry_snapshot() const;

  /// The lock-cheap metric registry (stage histograms live here).
  [[nodiscard]] obs::Telemetry& telemetry() { return telemetry_; }
  /// Sampled message-lifecycle spans (1-in-N; see ObsConfig::trace).
  [[nodiscard]] obs::TraceCollector& tracer() { return tracer_; }
  [[nodiscard]] const obs::TraceCollector& tracer() const { return tracer_; }
  /// Epoch-boundary health snapshots, oldest first (bounded JSON lines;
  /// written by the upkeep tick while telemetry is enabled).
  [[nodiscard]] const std::deque<std::string>& health_log() const {
    return health_log_;
  }
  /// The clock telemetry reads (virtual time under the simulator);
  /// nullptr when telemetry is disabled.
  [[nodiscard]] const obs::Clock* obs_clock() const { return obs_clock_; }

  /// Bounded ring of structured lifecycle events (reshard transitions,
  /// slashes, backpressure, anomaly firings, operator decisions).
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const {
    return recorder_;
  }
  /// The most recent postmortem dump ("" until an anomaly fires or a
  /// crash-restart is detected). Persistent nodes also write it to
  /// `<persist_dir>/postmortem.json`.
  [[nodiscard]] const std::string& last_postmortem() const {
    return last_postmortem_;
  }
  /// Self-monitor SLO rules over this node's own per-epoch health rows.
  [[nodiscard]] const obs::AnomalyEngine& anomaly_engine() const {
    return anomaly_;
  }
  /// Every retained sampled trace (completed ring then slow ring) — the
  /// per-node dump a cross-node obs::PropagationAssembler ingests tagged
  /// with node_id(). Ring overlap is fine: assembler ingestion is
  /// idempotent per (node, key) and keeps the richest version.
  [[nodiscard]] std::vector<obs::Trace> trace_dump() const;
  /// Feeds the latest mesh-level propagation rollup (from an assembler
  /// summary) into the self-monitor fleet aggregator, arming the
  /// propagation-latency SLO rule for the operator loop. Harness-fed; a
  /// standalone node leaves it unset and the rule stays healthy.
  void set_propagation_health(double p95_ms, double redundancy,
                              double reachability,
                              std::uint64_t incomplete_trees) {
    self_fleet_.set_propagation(p95_ms, redundancy, reachability,
                                incomplete_trees);
  }
  /// This node's health scrape for the current epoch — the generic
  /// NodeHealthSample a FleetAggregator ingests. The harness-only ground
  /// truth (honest/spam deliveries) is left 0 for the caller to fill.
  [[nodiscard]] obs::NodeHealthSample health_sample() const;

 private:
  /// WAL record schema (v3). Chain-derived state is NOT journaled — the
  /// chain's event log is authoritative and replayable from the cursor;
  /// the WAL carries only what exists nowhere else after a crash.
  /// Shard-scoped records (kNullifier, kOwnPublish) ride under the owning
  /// shard's WAL tag (persist/wal.hpp), so restart recovery rebuilds each
  /// shard's state independently; node-global records carry shard tag 0.
  ///
  /// v3 adds the live-reshard records: kReshardPhase journals every
  /// cutover phase transition (with its parameters) so a node that
  /// crashes mid-reshard replays into the correct phase fail-closed;
  /// kNullifierNext carries the incoming generation's own-log mirrors
  /// (its shard ids collide with the outgoing generation's, so they need
  /// their own tag); kCutoverObservation carries the shared domain-log
  /// entries under the DOMAIN (old-generation) shard tag.
  enum class WalTag : std::uint8_t {
    kNullifier = 1,     ///< observed (epoch, nullifier, share, proof fp)
    kSlashCommit = 2,   ///< local (sk, salt) behind a commit_slash tx
    kSlashReveal = 3,   ///< reveal submitted for a commitment
    kSlashResolve = 4,  ///< pending slash retired (slashed/withdrawn/expired)
    kOwnPublish = 5,    ///< own-publish epoch (rate-limit state, §III-E)
    kReshardPhase = 6,  ///< cutover phase transition + parameters
    kNullifierNext = 7, ///< observation in the incoming generation's logs
    kCutoverObservation = 8,  ///< shared domain-log entry (old-gen shard tag)
    kReshardLingerEnd = 9,    ///< linger expired: domain dropped, quota re-keyed
    /// v4 adds the operator loop: every autonomous begin/advance is
    /// journaled (action, epoch, target) BEFORE the kReshardPhase record
    /// it causes. Replay updates only the loop's bookkeeping (cooldown /
    /// dwell anchors) — the following kReshardPhase record performs the
    /// actual transition, so nothing double-applies.
    kOperatorDecision = 10,
  };

  /// Builds the §III-E message bundle: proof over (sk, path, H(m), epoch).
  WakuMessage build_message(Bytes payload, const std::string& content_topic,
                            std::uint64_t epoch);
  /// Installs the shard-scoped batch validator + delivery handler on one
  /// subscribed shard's pubsub topic. The wiring resolves the validator
  /// container by GENERATION at call time, so the drop-old swap (next
  /// validator becomes current) never leaves a mesh validating through a
  /// dead container.
  void wire_shard(shard::ShardedValidator& validator, shard::ShardId shard);
  /// The validator container owning generation `generation`'s meshes
  /// right now; nullptr for a generation this node no longer runs.
  [[nodiscard]] shard::ShardedValidator* validator_for_generation(
      std::uint32_t generation);
  /// (Re-)installs observe hooks + cutover log selectors on every
  /// pipeline of `validator`; `next_generation` picks the WAL tag its
  /// own-log mirrors journal under.
  void install_validator_hooks(shard::ShardedValidator& validator,
                               bool next_generation);
  /// The structural mechanics of one cutover phase transition, shared by
  /// the live path (advance_reshard) and WAL replay; `live` additionally
  /// performs relay (un)wiring, which replay leaves to start().
  void apply_reshard_transition(shard::ReshardPhase to,
                                std::uint64_t linger_until_epoch, bool live);
  /// Journals a kReshardPhase record for the transition just applied.
  void journal_reshard_phase(shard::ReshardPhase to,
                             std::uint64_t linger_until_epoch);
  /// Creates the incoming generation's validator (overlap entry).
  void create_next_validator();
  /// Linger expiry: drops the coordinator's domain state and re-keys the
  /// per-shard honest-quota map from old-generation (domain) to
  /// new-generation shard ids. The quota stays DOMAIN-keyed for as long
  /// as validators enforce the shared domain log — switching earlier
  /// (e.g. at drop-old) would let a node publish on two sibling new
  /// shards of one old family in the same epoch and double-signal
  /// against itself. The re-key is a conservative max-merge: every new
  /// shard inherits the newest epoch any domain saw, so it never
  /// under-blocks (at the cost of at most one skipped publish per shard
  /// for one epoch). Applied live from the upkeep tick (journaled as
  /// kReshardLingerEnd first) and replayed from the WAL at the same
  /// stream position, so a later cutover's records land on a
  /// non-lingering coordinator either way.
  void end_reshard_linger();

  struct PublishRoute {
    std::string pubsub_topic;
    /// The rate-limit domain key for the honest quota: the current
    /// (pre-drop-old: old) generation's shard of the topic.
    shard::ShardId quota_shard;
  };
  /// Publish routing across the cutover: the authoritative generation's
  /// mesh if this node hosts the topic's shard there, the other live
  /// generation's as fallback during overlap/drain; nullopt when neither
  /// generation's shard is hosted.
  [[nodiscard]] std::optional<PublishRoute> resolve_publish_route(
      const std::string& content_topic) const;

  /// Per-generation RLC seed for a validator container.
  [[nodiscard]] std::uint64_t validator_seed(std::uint32_t generation) const {
    return base_validator_seed_ ^
           (0xC0FFEE5ULL * (static_cast<std::uint64_t>(generation) + 1));
  }
  void handle_chain_event(const chain::Event& event);
  /// Kicks off commit-reveal slashing for a recovered secret key (§III-F).
  void trigger_slash(const Fr& spammer_sk);
  /// Retires any pending slash for `index` (slashed, withdrawn, expired).
  void resolve_slash(std::uint64_t index);
  /// Drops journaled slashes older than slash_expiry_epochs.
  void expire_pending_slashes();

  // -- Observability helpers --------------------------------------------------

  /// Resolves the telemetry clock (ObsConfig override, else a FnClock
  /// over the node's virtual time). Runs before the first
  /// install_validator_hooks so every pipeline generation gets wired.
  void setup_observability();
  /// The shard's stage-histogram bundle, registering the series on first
  /// use. Address-stable (node-based map) and shared across pipeline
  /// generations of the same shard id, so a live reshard never splits a
  /// shard's latency series.
  [[nodiscard]] PipelineMetrics& metrics_for_shard(shard::ShardId shard);
  /// True when tracing is on AND `msg`'s content key samples into the
  /// 1-in-N — call-site guard so unsampled messages never pay the
  /// detail-string build or the clock read, only the key hash.
  [[nodiscard]] bool traced(const WakuMessage& msg) const;
  /// Appends a span event / closes the span for `msg` (no-op unless
  /// tracing is on and the message's key samples in).
  void trace_event(const WakuMessage& msg, const char* stage,
                   std::string detail);
  void trace_finish(const WakuMessage& msg, std::string outcome);
  /// The shard's p95 whole-window validation latency in ms (0 until the
  /// shard validated anything, or with telemetry off).
  [[nodiscard]] double shard_p95_validate_ms(shard::ShardId shard) const;
  /// Appends one JSON health line to health_log_ (upkeep tick).
  void record_health_snapshot(std::uint64_t epoch);
  /// Appends one lifecycle event to the flight recorder (no-op with
  /// telemetry disabled — the recorder follows the obs master switch).
  void record_flight(std::uint64_t epoch, const char* kind,
                     std::string detail);
  /// Self-monitor step: folds this epoch's health_sample() through the
  /// single-node FleetAggregator + AnomalyEngine; fire transitions land
  /// in the flight recorder and trigger a postmortem dump.
  void evaluate_self_anomalies(std::uint64_t epoch);
  /// Renders recorder_.postmortem_json(reason) into last_postmortem_ and,
  /// for persistent nodes, `<persist_dir>/postmortem.json`.
  void dump_postmortem(const std::string& reason);
  /// One operator-loop step per upkeep tick (no-op unless enabled).
  void operator_tick();
  /// Journals a kOperatorDecision record (action 0 = begin, 1 = advance).
  void journal_operator_decision(std::uint8_t action, std::uint64_t epoch,
                                 std::uint16_t target);

  void journal(WalTag tag, BytesView payload, std::uint16_t shard = 0);
  void restore_from_store();
  void restore_snapshot(BytesView payload);
  void apply_wal_record(std::uint8_t type, std::uint16_t shard,
                        BytesView payload);

  net::Network& network_;
  chain::Blockchain& chain_;
  chain::Address contract_;
  NodeConfig config_;
  Rng rng_;
  /// Salt/nonce entropy for keystore-sealed snapshots. Separate from rng_
  /// (and mutable) because sealing happens inside the const
  /// serialize_state() and must not perturb the protocol RNG stream; OS-
  /// seeded, never from the node seed, so a restarted node cannot replay
  /// its previous salt/nonce stream (AEAD nonce reuse).
  mutable Rng seal_rng_;

  Identity identity_;
  WakuRelay relay_;
  GroupManager group_;
  /// RLC seed base: per-generation validator containers derive from it.
  std::uint64_t base_validator_seed_;
  shard::ShardedValidator shards_;
  /// The incoming generation's validator during announce/overlap/drain;
  /// becomes shards_ at drop-old.
  std::unique_ptr<shard::ShardedValidator> next_shards_;
  shard::ReshardCoordinator reshard_;
  shard::ShardLoadTracker load_tracker_;
  WakuStore store_;

  MessageHandler handler_;
  /// Honest rate-limit state, per shard: the quota is one message per
  /// epoch per shard (each shard is its own rate-limit domain — shard-
  /// scoped nullifier logs cannot see cross-shard double-signals, by
  /// design).
  std::unordered_map<shard::ShardId, std::uint64_t> last_published_epoch_;
  NodeStats stats_;

  struct PendingSlash {
    Fr sk;
    ff::U256 salt;
    std::uint64_t index;
    ff::U256 commitment;
    bool revealed = false;
    std::uint64_t commit_epoch = 0;
  };
  std::deque<PendingSlash> pending_slashes_;
  std::unordered_set<std::uint64_t> slashes_in_flight_;  // by member index

  std::optional<persist::StateStore> state_store_;
  std::uint64_t event_cursor_ = 0;  ///< contract events applied

  /// One recorded root transition: after applying the event at `cursor`
  /// the group root became `root`.
  struct RootTransition {
    std::uint64_t cursor = 0;
    Fr root;
  };
  /// Bounded root-transition history backing make_delta_checkpoint():
  /// covers cursors in [root_history_floor_, event_cursor_], where the
  /// root at the floor itself is root_at_floor_. Deliberately not
  /// persisted — a restart resets it in start(), so delta requests fall
  /// back to full checkpoints until fresh transitions accrue.
  static constexpr std::size_t kRootHistoryCap = 64;
  std::uint64_t root_history_floor_ = 0;
  Fr root_at_floor_;
  std::deque<RootTransition> root_history_;
  std::uint64_t chain_subscription_ = 0;
  net::Simulator::TaskId upkeep_task_ = 0;
  bool started_ = false;

  // -- Observability state (src/obs) -----------------------------------------
  obs::Telemetry telemetry_;
  obs::TraceCollector tracer_;
  /// Owns the default virtual-time clock when ObsConfig::clock is null.
  std::unique_ptr<obs::FnClock> sim_clock_;
  /// What the pipelines/executor read; nullptr = telemetry disabled (the
  /// hot paths then skip every clock read).
  const obs::Clock* obs_clock_ = nullptr;
  /// Stage-histogram bundles per shard id; node-based map keeps the
  /// addresses the pipelines hold stable.
  std::map<shard::ShardId, PipelineMetrics> pipeline_metrics_;
  std::deque<std::string> health_log_;  ///< bounded JSON lines, oldest first

  // -- Fleet plane / operator loop (src/obs fleet + recorder) ----------------
  obs::FlightRecorder recorder_;
  /// Single-node aggregator + SLO rules over this node's own epoch rows
  /// (the fleet-wide instance lives in the sim/deployment layer).
  obs::FleetAggregator self_fleet_;
  obs::AnomalyEngine anomaly_;
  std::string last_postmortem_;
  /// Last executor rejected-counter value seen by upkeep; the delta per
  /// epoch becomes a backpressure flight event.
  std::uint64_t executor_rejected_seen_ = 0;
  /// Operator bookkeeping — journaled (kOperatorDecision) and snapshot
  /// (state v5), so a crash-restart resumes cooldown/dwell exactly.
  std::uint64_t operator_last_action_epoch_ = 0;
  std::uint64_t operator_phase_entered_epoch_ = 0;
  std::uint64_t operator_consecutive_recommend_ = 0;
  std::uint64_t operator_decisions_ = 0;
};

}  // namespace waku::rln
