// WakuRlnRelayNode: a complete WAKU-RLN-RELAY peer (paper §III).
//
// Composition per the paper's architecture:
//   * WAKU-RELAY transport (gossipsub mesh) for messages;
//   * membership via the on-chain contract (registration, §III-B);
//   * local identity-commitment tree synced from contract events (§III-C);
//   * epoch-based external nullifier (§III-D);
//   * proof-bundle generation on publish (§III-E);
//   * routing-time validation, nullifier log, and slashing with
//     commit-reveal on double-signals (§III-F);
//   * optional 13/WAKU2-STORE archive.
//
// Attacker hooks (force_publish / publish_with_invalid_proof) exist so the
// spam experiments can drive misbehaving-but-registered peers through the
// exact same code paths.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>

#include "chain/blockchain.hpp"
#include "chain/rln_contract.hpp"
#include "rln/group_manager.hpp"
#include "rln/identity.hpp"
#include "rln/validator.hpp"
#include "waku/relay.hpp"
#include "waku/store.hpp"

namespace waku::rln {

struct NodeConfig {
  std::size_t tree_depth = 20;
  TreeMode tree_mode = TreeMode::kFullTree;
  ValidatorConfig validator;
  chain::Address account;      ///< chain account paying gas/deposit
  bool enable_store = false;   ///< archive delivered messages (WAKU2-STORE)
  gossipsub::GossipSubConfig gossip;
  gossipsub::PeerScoreConfig score;
};

struct NodeStats {
  std::uint64_t published = 0;
  std::uint64_t publish_rate_limited = 0;  ///< honest self-throttle hits
  std::uint64_t delivered = 0;
  std::uint64_t slash_commits = 0;
  std::uint64_t slash_reveals = 0;
  std::uint64_t slash_rewards = 0;  ///< MemberSlashed where we were payee
};

class WakuRlnRelayNode {
 public:
  enum class PublishStatus { kOk, kNotRegistered, kRateLimited };

  using MessageHandler = std::function<void(const WakuMessage&)>;

  WakuRlnRelayNode(net::Network& network, chain::Blockchain& chain,
                   chain::Address contract, NodeConfig config,
                   std::uint64_t seed);

  /// Installs the validator, subscribes to the relay topic and the chain
  /// event feed, and starts gossip heartbeats. Call once, after wiring.
  void start();

  /// Submits the registration transaction (pk + deposit, §III-B). The
  /// membership becomes usable once the block is mined and the
  /// MemberRegistered event round-trips (the §IV-A registration delay).
  void register_membership();
  [[nodiscard]] bool is_registered() const {
    return group_.own_index().has_value();
  }

  /// Honest publish: refuses to exceed one message per epoch (§III-E).
  PublishStatus try_publish(Bytes payload,
                            const std::string& content_topic =
                                "/waku/2/default-content/proto");

  /// Spammer publish: generates a *valid* proof but ignores the local rate
  /// limit — the double-signaling attack the scheme exists to punish.
  PublishStatus force_publish(Bytes payload,
                              const std::string& content_topic =
                                  "/waku/2/default-content/proto");

  /// Resource-exhaustion attacker: attaches a garbage proof.
  void publish_with_invalid_proof(Bytes payload);

  /// Registers a callback for delivered (validated) messages.
  void set_message_handler(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  [[nodiscard]] net::NodeId node_id() const { return relay_.node_id(); }
  [[nodiscard]] const Identity& identity() const { return identity_; }
  [[nodiscard]] const chain::Address& account() const {
    return config_.account;
  }
  [[nodiscard]] std::uint64_t current_epoch() const;

  [[nodiscard]] WakuRelay& relay() { return relay_; }
  [[nodiscard]] GroupManager& group() { return group_; }
  [[nodiscard]] RlnValidator& validator() { return validator_; }
  /// The staged validation pipeline behind validator() — the node's one
  /// validation entry point.
  [[nodiscard]] ValidationPipeline& pipeline() {
    return validator_.pipeline();
  }
  [[nodiscard]] WakuStore& store() { return store_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }

 private:
  /// Builds the §III-E message bundle: proof over (sk, path, H(m), epoch).
  WakuMessage build_message(Bytes payload, const std::string& content_topic,
                            std::uint64_t epoch);
  void handle_chain_event(const chain::Event& event);
  /// Kicks off commit-reveal slashing for a recovered secret key (§III-F).
  void trigger_slash(const Fr& spammer_sk);

  net::Network& network_;
  chain::Blockchain& chain_;
  chain::Address contract_;
  NodeConfig config_;
  Rng rng_;

  Identity identity_;
  WakuRelay relay_;
  GroupManager group_;
  RlnValidator validator_;
  WakuStore store_;

  MessageHandler handler_;
  std::optional<std::uint64_t> last_published_epoch_;
  NodeStats stats_;

  struct PendingSlash {
    Fr sk;
    ff::U256 salt;
    std::uint64_t index;
    ff::U256 commitment;
    bool revealed = false;
  };
  std::deque<PendingSlash> pending_slashes_;
  std::unordered_set<std::uint64_t> slashes_in_flight_;  // by member index
};

}  // namespace waku::rln
