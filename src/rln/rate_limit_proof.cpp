#include "rln/rate_limit_proof.hpp"

#include "common/serde.hpp"
#include "hash/sha256.hpp"

namespace waku::rln {

Bytes RateLimitProof::serialize() const {
  ByteWriter w;
  w.write_raw(share_x.to_bytes_be());
  w.write_raw(share_y.to_bytes_be());
  w.write_raw(nullifier.to_bytes_be());
  w.write_u64(epoch);
  w.write_raw(root.to_bytes_be());
  w.write_raw(proof.serialize());
  return std::move(w).take();
}

RateLimitProof RateLimitProof::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  RateLimitProof p;
  p.share_x = Fr::from_bytes_reduce(r.read_raw(32));
  p.share_y = Fr::from_bytes_reduce(r.read_raw(32));
  p.nullifier = Fr::from_bytes_reduce(r.read_raw(32));
  p.epoch = r.read_u64();
  p.root = Fr::from_bytes_reduce(r.read_raw(32));
  p.proof = zksnark::Proof::deserialize(r.read_raw(zksnark::Proof::kSerializedSize));
  return p;
}

std::vector<Fr> RateLimitProof::public_inputs(const Fr& msg_hash) const {
  zksnark::RlnPublicInputs pub;
  pub.x = msg_hash;
  pub.y = share_y;
  pub.nullifier = nullifier;
  pub.epoch = Fr::from_u64(epoch);
  pub.root = root;
  return pub.to_vector();
}

Fr message_hash(const WakuMessage& message) {
  return Fr::from_bytes_reduce(hash::sha256_bytes(message.signal_bytes()));
}

void attach_proof(WakuMessage& message, const RateLimitProof& proof) {
  message.rate_limit_proof = proof.serialize();
}

std::optional<RateLimitProof> extract_proof(const WakuMessage& message) {
  if (!message.rate_limit_proof.has_value()) return std::nullopt;
  try {
    return RateLimitProof::deserialize(*message.rate_limit_proof);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace waku::rln
