// Signed membership checkpoints: the O(log N) bootstrap artifact a
// storage-rich full peer serves so a joining light client can validate
// live traffic immediately instead of replaying the contract event stream
// from genesis (the fast-join counterpart of the paper's §IV-A hybrid
// architecture; cf. the membership-snapshot shipping of zk-SNARK-gated
// spam-prevention systems).
//
// Contents: the group state (root window + root-tracker partial view +
// member counters), the chain event cursor the state corresponds to, and
// the serving peer's per-shard nullifier-log GC watermarks (the sharded
// relay keeps one log per shard; a shard-scoped bootstrap carries only the
// subscribed shards' watermarks). The attestation is a real Schnorr
// signature (hash/schnorr.hpp) under the service node's key: clients hold
// only the service's *public* key, verification fails closed on any
// payload or signature tampering, and — unlike the keyed-MAC stand-in this
// replaced — a client can never forge an attestation itself. Independent
// of the signature, the client cross-checks the checkpoint against the
// contract (member count) and against itself (view root must close the
// root window) before trusting it.
#pragma once

#include <cstdint>

#include "hash/schnorr.hpp"
#include "rln/group_manager.hpp"
#include "shard/shard_map.hpp"

namespace waku::rln {

struct Checkpoint {
  /// Chain event sequence the group state reflects; the client resumes the
  /// event stream here.
  std::uint64_t event_cursor = 0;
  std::uint64_t member_count = 0;
  std::uint64_t removed_count = 0;
  /// Serving peer's per-shard nullifier GC watermarks, ordered by shard:
  /// epochs below a shard's watermark were already expired server-side, so
  /// the client must not treat them as fresh on that shard.
  std::vector<shard::ShardWatermark> nullifier_watermarks;
  std::vector<Fr> recent_roots;  ///< oldest → newest root window
  Bytes view;                    ///< serialized root-tracker partial view
  hash::schnorr::Signature signature;  ///< Schnorr over the payload

  [[nodiscard]] Bytes serialize() const;
  static Checkpoint deserialize(BytesView bytes);

  /// Signs the payload under the service node's key.
  void sign(const hash::schnorr::KeyPair& key);
  /// True iff the signature verifies under `service_pk` over the current
  /// payload. Any payload or signature tampering fails.
  [[nodiscard]] bool verify(const Fr& service_pk) const;

  /// Watermark for one shard, if the checkpoint carries it.
  [[nodiscard]] std::optional<std::uint64_t> watermark_for(
      shard::ShardId shard) const;

  [[nodiscard]] GroupCheckpoint group_checkpoint() const {
    return GroupCheckpoint{member_count, removed_count, recent_roots, view};
  }
};

/// Builds the unsigned checkpoint for a full peer's group state.
/// `watermarks` is the serving peer's per-shard nullifier GC state,
/// optionally pre-filtered to the requesting client's shard subset.
Checkpoint make_group_checkpoint(
    const GroupManager& group, std::uint64_t event_cursor,
    std::vector<shard::ShardWatermark> watermarks);

// -- Delta checkpoints -------------------------------------------------------
//
// A light client that already holds a verified checkpoint does not need the
// O(log N) view and the full root window again to stay current — for a
// churning group it only needs the window to keep advancing. The delta
// checkpoint is the poll-mode artifact: bound to the client's (cursor,
// newest-root) state, it carries the *absolute* destination (cursor, member
// counters, watermarks) plus the tail of root transitions since the
// binding, all Schnorr-signed. A 1k-member churn window syncs in ~200
// bytes where a full checkpoint re-ships kilobytes of window + view.
//
// Fail-closed by construction: the serving node only builds a delta when
// its retained root-transition history still covers the client's cursor,
// the client's claimed root matches the history at that cursor, and the
// number of transitions since fits the tail cap. Any gap, mismatch, or
// restart-evicted history makes the server fall back to a full checkpoint
// (and the client adopts it through the normal full-verification path).

/// Upper bound on the served root tail. Transitions beyond this mean the
/// client's window would silently miss intermediate roots — the server
/// falls back to a full checkpoint instead of serving a lossy delta.
inline constexpr std::size_t kDeltaRootTailMax = 8;

struct DeltaCheckpoint {
  /// Binding to the client's prior state: apply only if the client sits
  /// exactly at `from_cursor` with `from_root` as its newest window root.
  std::uint64_t from_cursor = 0;
  Fr from_root;

  /// Absolute destination state (not increments): the chain cursor the
  /// delta fast-forwards to and the member counters there.
  std::uint64_t to_cursor = 0;
  std::uint64_t member_count = 0;
  std::uint64_t removed_count = 0;
  /// Per-shard watermark values at to_cursor (absolute, same shape as the
  /// full checkpoint's).
  std::vector<shard::ShardWatermark> nullifier_watermarks;
  /// Every root transition in (from_cursor, to_cursor], oldest → newest;
  /// size <= kDeltaRootTailMax. The client unions these into its window.
  std::vector<Fr> root_tail;
  hash::schnorr::Signature signature;

  [[nodiscard]] Bytes serialize() const;
  static DeltaCheckpoint deserialize(BytesView bytes);

  void sign(const hash::schnorr::KeyPair& key);
  [[nodiscard]] bool verify(const Fr& service_pk) const;

  [[nodiscard]] std::optional<std::uint64_t> watermark_for(
      shard::ShardId shard) const;
};

}  // namespace waku::rln
