// Signed membership checkpoints: the O(log N) bootstrap artifact a
// storage-rich full peer serves so a joining light client can validate
// live traffic immediately instead of replaying the contract event stream
// from genesis (the fast-join counterpart of the paper's §IV-A hybrid
// architecture; cf. the membership-snapshot shipping of zk-SNARK-gated
// spam-prevention systems).
//
// Contents: the group state (root window + root-tracker partial view +
// member counters), the chain event cursor the state corresponds to, and
// the serving peer's nullifier-log GC watermark. The attestation is a
// keyed Keccak-256 MAC over the payload — a stand-in for a real signature
// scheme (the simulator has no PKI); what it models is that the client
// only accepts checkpoints from peers it exchanged a key with out of band.
// Independent of the MAC, the client cross-checks the checkpoint against
// the contract (member count) and against itself (view root must close the
// root window) before trusting it.
#pragma once

#include <array>
#include <cstdint>

#include "rln/group_manager.hpp"

namespace waku::rln {

struct Checkpoint {
  /// Chain event sequence the group state reflects; the client resumes the
  /// event stream here.
  std::uint64_t event_cursor = 0;
  std::uint64_t member_count = 0;
  std::uint64_t removed_count = 0;
  /// Serving peer's nullifier GC watermark: epochs below this were already
  /// expired server-side, so the client must not treat them as fresh.
  std::uint64_t nullifier_min_epoch = 0;
  std::vector<Fr> recent_roots;  ///< oldest → newest root window
  Bytes view;                    ///< serialized root-tracker partial view
  std::array<std::uint8_t, 32> attestation{};  ///< keyed MAC (see above)

  [[nodiscard]] Bytes serialize() const;
  static Checkpoint deserialize(BytesView bytes);

  /// Computes and stores the attestation under `key`.
  void sign(BytesView key);
  /// True if the attestation matches `key` over the current payload.
  [[nodiscard]] bool verify(BytesView key) const;

  [[nodiscard]] GroupCheckpoint group_checkpoint() const {
    return GroupCheckpoint{member_count, removed_count, recent_roots, view};
  }
};

/// Builds the unsigned checkpoint for a full peer's group state.
Checkpoint make_group_checkpoint(const GroupManager& group,
                                 std::uint64_t event_cursor,
                                 std::uint64_t nullifier_min_epoch);

}  // namespace waku::rln
