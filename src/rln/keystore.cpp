#include "rln/keystore.hpp"

#include "common/serde.hpp"
#include "hash/chacha20poly1305.hpp"
#include "hash/sha256.hpp"

namespace waku::rln {

namespace {

constexpr std::uint8_t kMagic[4] = {'W', 'R', 'L', 'N'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kSaltLen = 16;

// Password-based key derivation: iterated salted SHA-256. The iteration
// count mimics a (cheap) PBKDF work factor; real deployments would use a
// memory-hard KDF, which is orthogonal to everything tested here.
hash::ChaChaKey derive_key(std::string_view password, BytesView salt) {
  Bytes state = to_bytes("waku-rln-keystore-v1");
  state.insert(state.end(), salt.begin(), salt.end());
  const Bytes pw = to_bytes(password);
  state.insert(state.end(), pw.begin(), pw.end());
  hash::Sha256Digest digest = hash::sha256(state);
  for (int i = 0; i < 1000; ++i) {
    digest = hash::sha256(BytesView(digest.data(), digest.size()));
  }
  hash::ChaChaKey key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

Bytes encode_credential(const MembershipCredential& credential) {
  ByteWriter w;
  w.write_raw(credential.identity.sk_bytes());
  w.write_u64(credential.member_index);
  w.write_string(credential.contract_address);
  return std::move(w).take();
}

MembershipCredential decode_credential(BytesView plain) {
  ByteReader r(plain);
  MembershipCredential credential;
  credential.identity =
      Identity::from_secret(Fr::from_bytes_reduce(r.read_raw(32)));
  credential.member_index = r.read_u64();
  credential.contract_address = r.read_string();
  return credential;
}

}  // namespace

Bytes keystore_seal(const MembershipCredential& credential,
                    std::string_view password, Rng& rng) {
  const Bytes salt = rng.next_bytes(kSaltLen);
  const hash::ChaChaKey key = derive_key(password, salt);
  hash::ChaChaNonce nonce;
  const Bytes nonce_bytes = rng.next_bytes(nonce.size());
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());

  Bytes out(kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.insert(out.end(), salt.begin(), salt.end());
  out.insert(out.end(), nonce.begin(), nonce.end());
  const Bytes sealed =
      hash::aead_encrypt(key, nonce, encode_credential(credential),
                         BytesView(kMagic, 4));
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<MembershipCredential> keystore_open(BytesView sealed,
                                                  std::string_view password) {
  constexpr std::size_t kHeader = 4 + 1 + kSaltLen + 12;
  if (sealed.size() < kHeader + 16) return std::nullopt;
  if (!std::equal(kMagic, kMagic + 4, sealed.begin())) return std::nullopt;
  if (sealed[4] != kVersion) return std::nullopt;

  const BytesView salt(sealed.data() + 5, kSaltLen);
  hash::ChaChaNonce nonce;
  std::copy(sealed.begin() + 5 + kSaltLen,
            sealed.begin() + 5 + kSaltLen + 12, nonce.begin());
  const hash::ChaChaKey key = derive_key(password, salt);
  const auto plain = hash::aead_decrypt(
      key, nonce, BytesView(sealed.data() + kHeader, sealed.size() - kHeader),
      BytesView(kMagic, 4));
  if (!plain.has_value()) return std::nullopt;
  try {
    return decode_credential(*plain);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace waku::rln
