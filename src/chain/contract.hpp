// Contract execution model: contracts are C++ objects with gas-metered
// word storage, an event sink, and value-transfer access, invoked by the
// Blockchain through a call context. This mirrors the EVM's storage/log
// cost model without interpreting bytecode.
#pragma once

#include <string>
#include <unordered_map>

#include "chain/gas.hpp"
#include "chain/types.hpp"
#include "ff/u256.hpp"

namespace waku::chain {

class Blockchain;

/// Thrown by contract code to revert the transaction.
class Revert : public std::runtime_error {
 public:
  explicit Revert(const std::string& reason) : std::runtime_error(reason) {}
};

/// Gas-metered 256-bit word storage (one contract's storage trie) with a
/// per-transaction undo journal so reverted transactions leave no trace.
class Storage {
 public:
  /// Metered read.
  ff::U256 load(GasMeter& gas, const ff::U256& key) const;

  /// Metered write with set/update/clear pricing and clear refunds.
  void store(GasMeter& gas, const ff::U256& key, const ff::U256& value);

  /// Unmetered peek (for tests/benches/off-chain indexers).
  [[nodiscard]] ff::U256 peek(const ff::U256& key) const;

  /// Number of non-zero slots (for storage-cost accounting).
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  // Transaction journal (driven by the Blockchain).
  void begin_journal();
  void commit_journal();
  void rollback_journal();

 private:
  void raw_set(const ff::U256& key, const ff::U256& value);

  std::unordered_map<ff::U256, ff::U256, ff::U256Hash> slots_;
  bool journaling_ = false;
  std::vector<std::pair<ff::U256, ff::U256>> journal_;  // (key, old value)
};

/// Everything a contract method invocation can see and do.
class CallContext {
 public:
  CallContext(Blockchain& chain, Address self, Address sender, Gwei value,
              std::uint64_t block_number, GasMeter& gas, Storage& storage,
              std::vector<Event>& events)
      : chain_(chain),
        self_(self),
        sender_(sender),
        value_(value),
        block_number_(block_number),
        gas_(gas),
        storage_(storage),
        events_(events) {}

  [[nodiscard]] Address self() const { return self_; }
  [[nodiscard]] Address sender() const { return sender_; }
  [[nodiscard]] Gwei value() const { return value_; }
  [[nodiscard]] std::uint64_t block_number() const { return block_number_; }

  GasMeter& gas() { return gas_; }
  [[nodiscard]] const GasSchedule& schedule() const { return gas_.schedule(); }

  ff::U256 sload(const ff::U256& key) { return storage_.load(gas_, key); }
  void sstore(const ff::U256& key, const ff::U256& value) {
    storage_.store(gas_, key, value);
  }

  /// Emits a log with LOG gas pricing.
  void emit(std::string name, std::vector<ff::U256> topics, Bytes data = {});

  /// Transfers gwei out of the contract's balance.
  void transfer_out(const Address& to, Gwei amount);

  /// Charges the gas cost of one on-chain ZK-friendly hash evaluation.
  void charge_poseidon() { gas_.charge(schedule().poseidon_hash); }

  /// Reverts the transaction with `reason` unless `cond` holds.
  void require(bool cond, const std::string& reason) const {
    if (!cond) throw Revert(reason);
  }

 private:
  Blockchain& chain_;
  Address self_;
  Address sender_;
  Gwei value_;
  std::uint64_t block_number_;
  GasMeter& gas_;
  Storage& storage_;
  std::vector<Event>& events_;
};

/// Base class for native contracts.
class Contract {
 public:
  virtual ~Contract() = default;

  /// Dispatches `method` with `calldata`; returns ABI-free return data.
  /// Throws Revert (or OutOfGas) to fail the transaction.
  virtual Bytes call(CallContext& ctx, const std::string& method,
                     BytesView calldata) = 0;

  Storage& storage() { return storage_; }
  [[nodiscard]] const Storage& storage() const { return storage_; }

 private:
  Storage storage_;
};

}  // namespace waku::chain
