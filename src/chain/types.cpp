#include "chain/types.hpp"

#include "common/serde.hpp"

namespace waku::chain {

Bytes serialize_event(const Event& event) {
  ByteWriter w;
  w.write_raw(BytesView(event.contract.bytes.data(),
                        event.contract.bytes.size()));
  w.write_string(event.name);
  w.write_u32(static_cast<std::uint32_t>(event.topics.size()));
  for (const ff::U256& topic : event.topics) {
    w.write_raw(ff::u256_to_bytes_be(topic));
  }
  w.write_bytes(event.data);
  w.write_u64(event.block_number);
  return std::move(w).take();
}

Event deserialize_event(BytesView bytes) {
  ByteReader r(bytes);
  Event event;
  const Bytes addr = r.read_raw(event.contract.bytes.size());
  std::copy(addr.begin(), addr.end(), event.contract.bytes.begin());
  event.name = r.read_string();
  const std::uint32_t topic_count = r.read_u32();
  event.topics.reserve(topic_count);
  for (std::uint32_t i = 0; i < topic_count; ++i) {
    event.topics.push_back(ff::u256_from_bytes_be(r.read_raw(32)));
  }
  event.data = r.read_bytes();
  event.block_number = r.read_u64();
  return event;
}

}  // namespace waku::chain
