// Semaphore-style membership contract — the baseline the paper's §III-A
// argues against. Two deliberate cost centers, faithful to the original:
//
//   1. the identity-commitment Merkle tree lives ON-CHAIN: every insert or
//      delete walks the path, costing O(depth) storage writes and O(depth)
//      on-chain Poseidon evaluations (the "logarithmic gas" the paper
//      cites);
//   2. signals (messages) are broadcast THROUGH the contract: per-message
//      proof verification plus on-chain payload storage, and a message only
//      becomes visible when its block is mined (the latency E9 measures).
//
// Methods:
//   register          pk(32B)                          value == deposit
//   remove            index(u64)
//   broadcast_signal  nullifier(32B), u32 len, payload
//   root              -> 32B
//   member_count      -> u64
#pragma once

#include "chain/contract.hpp"
#include "ff/fr.hpp"

namespace waku::chain {

class SemaphoreContract : public Contract {
 public:
  SemaphoreContract(std::size_t tree_depth, Gwei deposit);

  Bytes call(CallContext& ctx, const std::string& method,
             BytesView calldata) override;

  [[nodiscard]] std::size_t tree_depth() const { return depth_; }

  /// Unmetered views.
  [[nodiscard]] ff::U256 root_view() const;
  [[nodiscard]] std::uint64_t member_count_view() const;
  [[nodiscard]] std::uint64_t signal_count_view() const;

  // Storage layout (exposed for tests).
  static ff::U256 count_key() { return ff::U256{0}; }
  static ff::U256 root_key() { return ff::U256{1}; }
  static ff::U256 signal_count_key() { return ff::U256{2}; }
  static ff::U256 node_key(std::size_t level, std::uint64_t index) {
    return ff::U256{index, static_cast<std::uint64_t>(level), 2, 0};
  }
  static ff::U256 nullifier_key(const ff::U256& nullifier);
  static ff::U256 signal_key(std::uint64_t signal_index, std::uint64_t word);

  /// Gas charged for on-chain Groth16 verification (pairing-dominated,
  /// ~250k on mainnet deployments).
  static constexpr std::uint64_t kGroth16VerifyGas = 250'000;

 private:
  Bytes do_register(CallContext& ctx, BytesView calldata);
  Bytes do_remove(CallContext& ctx, BytesView calldata);
  Bytes do_broadcast(CallContext& ctx, BytesView calldata);

  /// Writes `leaf` at `index` and re-hashes the path to the root, charging
  /// per-level storage and Poseidon gas.
  void set_leaf(CallContext& ctx, std::uint64_t index, const ff::Fr& leaf);

  std::size_t depth_;
  Gwei deposit_;
};

}  // namespace waku::chain
