// EVM-style gas metering (paper §IV-A prices membership at ~40k gas and
// batch insertion at ~20k; E6 reproduces those numbers with this schedule).
//
// Costs follow the post-Berlin fee schedule for the operations the
// membership contracts use. ZK-friendly hashing on-chain (Poseidon/MiMC via
// precompile-less Solidity) is priced at its commonly reported ~50k gas.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace waku::chain {

struct GasSchedule {
  std::uint64_t tx_intrinsic = 21'000;
  std::uint64_t sstore_set = 20'000;     ///< zero -> non-zero
  std::uint64_t sstore_update = 2'900;   ///< non-zero -> non-zero (warm)
  std::uint64_t sstore_clear = 2'900;    ///< non-zero -> zero (before refund)
  std::uint64_t sstore_clear_refund = 4'800;
  std::uint64_t sload = 2'100;
  std::uint64_t log_base = 375;
  std::uint64_t log_topic = 375;
  std::uint64_t log_data_byte = 8;
  std::uint64_t calldata_byte = 16;
  std::uint64_t keccak_base = 30;
  std::uint64_t keccak_word = 6;
  std::uint64_t poseidon_hash = 50'000;  ///< on-chain ZK-friendly hash
  std::uint64_t transfer_stipend = 2'300;
};

/// Thrown when a transaction exceeds its gas limit; the chain converts it
/// into a failed receipt that still charges the limit.
class OutOfGas : public std::runtime_error {
 public:
  OutOfGas() : std::runtime_error("out of gas") {}
};

/// Meters gas usage against a limit; accumulates EIP-3529-capped refunds.
class GasMeter {
 public:
  GasMeter(std::uint64_t limit, const GasSchedule& schedule)
      : limit_(limit), schedule_(schedule) {}

  void charge(std::uint64_t amount) {
    used_ += amount;
    if (used_ > limit_) throw OutOfGas();
  }

  void add_refund(std::uint64_t amount) { refund_ += amount; }

  /// Gas used after applying the refund cap (max 1/5 of used, EIP-3529).
  [[nodiscard]] std::uint64_t settled_gas() const {
    const std::uint64_t cap = used_ / 5;
    return used_ - (refund_ < cap ? refund_ : cap);
  }

  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] const GasSchedule& schedule() const { return schedule_; }

 private:
  std::uint64_t limit_;
  std::uint64_t used_ = 0;
  std::uint64_t refund_ = 0;
  const GasSchedule& schedule_;
};

}  // namespace waku::chain
