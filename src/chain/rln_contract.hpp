// The WAKU-RLN-RELAY membership contract (paper §III-A/§III-B).
//
// Design shift vs Semaphore that the paper motivates: the contract keeps a
// *flat append-only list* of identity commitments — insertion and deletion
// touch a single storage slot — and the Merkle tree lives off-chain with
// the peers. Messages never touch the contract.
//
// Methods (native dispatch, calldata layouts documented per method):
//   register        pk(32B)                          value == deposit
//   register_batch  u32 n, n * pk(32B)               value == n * deposit
//   commit_slash    commitment(32B)                  commit-reveal step 1
//   reveal_slash    sk(32B) salt(32B) index(u64) path  commit-reveal step 2
//   slash_direct    sk(32B) index(u64) path          race-prone variant
//   withdraw        sk(32B) index(u64) path          exit with deposit
//   withdraw_batch  u32 n, n * (sk(32B) index(u64) u32-prefixed path)
//   member_count    -> u64
//   member_at       index(u64) -> pk(32B)
//
// `path` is the removed leaf's serialized auth path: the contract does not
// interpret it (no gas beyond calldata + log) but echoes it in the removal
// event so peers holding only the O(log N) partial view [18] can apply the
// deletion — the availability assumption of paper §IV-A.
//
// Batch methods emit ONE event per call, which peers fold into a single
// root transition:
//   MembersRegistered  topics {base, n},     data = n * pk(32B)
//   MembersWithdrawn   topics {n, payee},    data = n * (index(u64) pk(32B)
//                                                        u32-prefixed path)
// withdraw_batch paths must be sequentially valid: record i's path is
// checked by partial views against the tree after records 0..i-1 applied.
#pragma once

#include "chain/contract.hpp"
#include "ff/fr.hpp"

namespace waku::chain {

class RlnMembershipContract : public Contract {
 public:
  /// `deposit` is the stake v required to register (paper §III-B).
  explicit RlnMembershipContract(Gwei deposit) : deposit_(deposit) {}

  Bytes call(CallContext& ctx, const std::string& method,
             BytesView calldata) override;

  [[nodiscard]] Gwei deposit() const { return deposit_; }

  /// Unmetered views for off-chain indexers/tests.
  [[nodiscard]] std::uint64_t member_count_view() const;
  [[nodiscard]] ff::U256 member_at_view(std::uint64_t index) const;

  // Storage layout helpers (exposed for tests).
  static ff::U256 count_key() { return ff::U256{0}; }
  static ff::U256 member_key(std::uint64_t index) {
    return ff::U256{index, 0, 1, 0};
  }
  static ff::U256 commitment_key(const ff::U256& commitment);

  /// The commitment binding a slasher to (sk, salt, slasher address) —
  /// computed off-chain by the slasher, checked on reveal.
  static ff::U256 make_slash_commitment(const ff::Fr& sk, const ff::U256& salt,
                                        const Address& slasher);

 private:
  Bytes do_register(CallContext& ctx, BytesView calldata);
  Bytes do_register_batch(CallContext& ctx, BytesView calldata);
  Bytes do_commit_slash(CallContext& ctx, BytesView calldata);
  Bytes do_reveal_slash(CallContext& ctx, BytesView calldata);
  Bytes do_slash_direct(CallContext& ctx, BytesView calldata);
  Bytes do_withdraw(CallContext& ctx, BytesView calldata);
  Bytes do_withdraw_batch(CallContext& ctx, BytesView calldata);

  void register_one(CallContext& ctx, const ff::U256& pk);
  /// Shared by reveal/direct slash and withdraw: verify pk at index matches
  /// H(sk), clear the slot, pay `payee`, echo `path_data` in the event.
  void remove_member(CallContext& ctx, const ff::Fr& sk, std::uint64_t index,
                     const Address& payee, const char* event_name,
                     BytesView path_data);

  Gwei deposit_;
};

}  // namespace waku::chain
