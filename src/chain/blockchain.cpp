#include "chain/blockchain.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace waku::chain {

Blockchain::Blockchain(Config config) : config_(std::move(config)) {}

void Blockchain::create_account(const Address& addr, Gwei balance) {
  balances_[addr] = balance;
}

Gwei Blockchain::balance(const Address& addr) const {
  const auto it = balances_.find(addr);
  return it == balances_.end() ? 0 : it->second;
}

Address Blockchain::deploy(std::unique_ptr<Contract> contract) {
  const Address addr = Address::from_u64(next_contract_id_++);
  balances_.emplace(addr, 0);
  contracts_.emplace(addr, std::move(contract));
  return addr;
}

std::uint64_t Blockchain::submit(Transaction tx) {
  const std::uint64_t handle = next_handle_++;
  pending_.emplace_back(handle, std::move(tx));
  receipts_.emplace_back();  // slot filled when the tx is mined
  return handle;
}

void Blockchain::internal_transfer(const Address& from, const Address& to,
                                   Gwei amount) {
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    throw Revert("insufficient contract balance for transfer");
  }
  it->second -= amount;
  balances_[to] += amount;
  if (balance_journal_active_) {
    balance_journal_.emplace_back(from, amount, to);
  }
}

TxReceipt Blockchain::execute(const Transaction& tx,
                              std::uint64_t block_number) {
  TxReceipt receipt;
  receipt.block_number = block_number;

  const Gwei max_fee = tx.gas_limit * tx.gas_price;
  auto sender_it = balances_.find(tx.from);
  if (sender_it == balances_.end() ||
      sender_it->second < max_fee + tx.value) {
    receipt.revert_reason = "insufficient funds for gas * price + value";
    return receipt;
  }

  GasMeter meter(tx.gas_limit, config_.schedule);
  const auto contract_it = contracts_.find(tx.to);

  // Begin journals so a revert unwinds every state effect.
  balance_journal_active_ = true;
  balance_journal_.clear();
  if (contract_it != contracts_.end()) {
    contract_it->second->storage().begin_journal();
  }

  std::vector<Event> events;
  bool success = false;
  std::string revert_reason;
  Bytes return_data;
  try {
    meter.charge(config_.schedule.tx_intrinsic);
    meter.charge(config_.schedule.calldata_byte * tx.calldata.size());
    internal_transfer(tx.from, tx.to, tx.value);
    if (contract_it != contracts_.end()) {
      CallContext ctx(*this, tx.to, tx.from, tx.value, block_number, meter,
                      contract_it->second->storage(), events);
      return_data = contract_it->second->call(ctx, tx.method, tx.calldata);
    }
    success = true;
  } catch (const Revert& r) {
    revert_reason = r.what();
  } catch (const OutOfGas&) {
    revert_reason = "out of gas";
  }

  if (success) {
    if (contract_it != contracts_.end()) {
      contract_it->second->storage().commit_journal();
    }
  } else {
    // Unwind transfers (in reverse) and storage writes.
    for (auto it = balance_journal_.rbegin(); it != balance_journal_.rend();
         ++it) {
      const auto& [from, amount, to] = *it;
      balances_[to] -= amount;
      balances_[from] += amount;
    }
    if (contract_it != contracts_.end()) {
      contract_it->second->storage().rollback_journal();
    }
    events.clear();
  }
  balance_journal_active_ = false;
  balance_journal_.clear();

  receipt.success = success;
  receipt.revert_reason = std::move(revert_reason);
  receipt.gas_used =
      success ? meter.settled_gas() : std::min(meter.used(), tx.gas_limit);
  if (!success && receipt.gas_used == 0) receipt.gas_used = tx.gas_limit;
  receipt.fee_paid = receipt.gas_used * tx.gas_price;
  receipt.return_data = std::move(return_data);
  receipt.events = std::move(events);

  balances_[tx.from] -= receipt.fee_paid;  // miner fee leaves the system
  return receipt;
}

const Block& Blockchain::mine_block(std::uint64_t timestamp_ms) {
  Block block;
  block.number = blocks_.size() + 1;
  block.timestamp_ms = timestamp_ms;

  // Miner ordering: highest gas price first (stable for equal bids) — the
  // mempool priority rule that makes front-running possible and that the
  // commit-reveal slashing scheme defends against (paper §III-F).
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.gas_price > b.second.gas_price;
                   });

  std::uint64_t gas_in_block = 0;
  while (!pending_.empty()) {
    // Respect the block gas limit: leftover transactions wait.
    if (gas_in_block >= config_.block_gas_limit) break;
    const auto [handle, tx] = std::move(pending_.front());
    pending_.pop_front();
    TxReceipt receipt = execute(tx, block.number);
    gas_in_block += receipt.gas_used;
    receipts_[handle] = receipt;
    block.receipts.push_back(std::move(receipt));
  }

  blocks_.push_back(std::move(block));
  const Block& mined = blocks_.back();
  for (const TxReceipt& r : mined.receipts) {
    for (const Event& ev : r.events) {
      event_log_.push_back(ev);
      for (const auto& sub : subscribers_) {
        if (sub) sub(ev);
      }
    }
  }
  return mined;
}

Bytes Blockchain::static_call(const Address& to, const std::string& method,
                              BytesView calldata) {
  const auto it = contracts_.find(to);
  WAKU_EXPECTS(it != contracts_.end());
  GasMeter meter(config_.block_gas_limit, config_.schedule);
  std::vector<Event> events;
  Storage& storage = it->second->storage();
  storage.begin_journal();
  balance_journal_active_ = true;
  Bytes out;
  try {
    CallContext ctx(*this, to, Address{}, 0,
                    blocks_.empty() ? 0 : blocks_.size(), meter, storage,
                    events);
    out = it->second->call(ctx, method, calldata);
  } catch (...) {
    for (auto jt = balance_journal_.rbegin(); jt != balance_journal_.rend();
         ++jt) {
      const auto& [from, amount, target] = *jt;
      balances_[target] -= amount;
      balances_[from] += amount;
    }
    storage.rollback_journal();
    balance_journal_active_ = false;
    balance_journal_.clear();
    throw;
  }
  // Static calls must not mutate state even on success.
  for (auto jt = balance_journal_.rbegin(); jt != balance_journal_.rend();
       ++jt) {
    const auto& [from, amount, target] = *jt;
    balances_[target] -= amount;
    balances_[from] += amount;
  }
  storage.rollback_journal();
  balance_journal_active_ = false;
  balance_journal_.clear();
  return out;
}

std::optional<TxReceipt> Blockchain::receipt(std::uint64_t tx_handle) const {
  if (tx_handle >= receipts_.size()) return std::nullopt;
  return receipts_[tx_handle];  // nullopt while still pending
}

const Block& Blockchain::block(std::uint64_t number) const {
  WAKU_EXPECTS(number >= 1 && number <= blocks_.size());
  return blocks_[number - 1];
}

std::uint64_t Blockchain::subscribe_events(
    std::function<void(const Event&)> callback) {
  subscribers_.push_back(std::move(callback));
  return subscribers_.size() - 1;
}

void Blockchain::unsubscribe_events(std::uint64_t subscription_id) {
  if (subscription_id < subscribers_.size()) {
    subscribers_[subscription_id] = nullptr;
  }
}

void Blockchain::replay_events(
    std::uint64_t from_seq,
    const std::function<void(const Event&)>& fn) const {
  for (std::uint64_t seq = from_seq; seq < event_log_.size(); ++seq) {
    fn(event_log_[seq]);
  }
}

}  // namespace waku::chain
