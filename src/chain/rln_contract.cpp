#include "chain/rln_contract.hpp"

#include "common/serde.hpp"
#include "hash/keccak256.hpp"
#include "hash/poseidon.hpp"

namespace waku::chain {

using ff::Fr;
using ff::U256;

namespace {

Fr read_fr(ByteReader& r) {
  return Fr::from_bytes_reduce(r.read_raw(32));
}

U256 read_u256(ByteReader& r) { return ff::u256_from_bytes_be(r.read_raw(32)); }

}  // namespace

U256 RlnMembershipContract::commitment_key(const U256& commitment) {
  Bytes preimage = {0x02};  // commitment-map domain
  const Bytes c = u256_to_bytes_be(commitment);
  preimage.insert(preimage.end(), c.begin(), c.end());
  return ff::u256_from_bytes_be(hash::keccak256_bytes(preimage));
}

U256 RlnMembershipContract::make_slash_commitment(const Fr& sk,
                                                  const U256& salt,
                                                  const Address& slasher) {
  Bytes preimage = sk.to_bytes_be();
  const Bytes s = u256_to_bytes_be(salt);
  preimage.insert(preimage.end(), s.begin(), s.end());
  preimage.insert(preimage.end(), slasher.bytes.begin(), slasher.bytes.end());
  return ff::u256_from_bytes_be(hash::keccak256_bytes(preimage));
}

Bytes RlnMembershipContract::call(CallContext& ctx, const std::string& method,
                                  BytesView calldata) {
  if (method == "register") return do_register(ctx, calldata);
  if (method == "register_batch") return do_register_batch(ctx, calldata);
  if (method == "withdraw_batch") return do_withdraw_batch(ctx, calldata);
  if (method == "commit_slash") return do_commit_slash(ctx, calldata);
  if (method == "reveal_slash") return do_reveal_slash(ctx, calldata);
  if (method == "slash_direct") return do_slash_direct(ctx, calldata);
  if (method == "withdraw") return do_withdraw(ctx, calldata);
  if (method == "member_count") {
    ByteWriter w;
    w.write_u64(ctx.sload(count_key()).limb[0]);
    return std::move(w).take();
  }
  if (method == "member_at") {
    ByteReader r(calldata);
    const std::uint64_t index = r.read_u64();
    return u256_to_bytes_be(ctx.sload(member_key(index)));
  }
  throw Revert("unknown method: " + method);
}

void RlnMembershipContract::register_one(CallContext& ctx, const U256& pk) {
  ctx.require(!pk.is_zero(), "zero identity commitment");
  const U256 count = ctx.sload(count_key());
  const std::uint64_t index = count.limb[0];
  ctx.sstore(member_key(index), pk);
  ctx.sstore(count_key(), U256{index + 1});
  ctx.emit("MemberRegistered", {U256{index}, pk});
}

Bytes RlnMembershipContract::do_register(CallContext& ctx, BytesView calldata) {
  ctx.require(ctx.value() == deposit_, "register: wrong deposit");
  ByteReader r(calldata);
  register_one(ctx, read_u256(r));
  return {};
}

Bytes RlnMembershipContract::do_register_batch(CallContext& ctx,
                                               BytesView calldata) {
  ByteReader r(calldata);
  const std::uint32_t n = r.read_u32();
  ctx.require(n > 0, "register_batch: empty batch");
  ctx.require(ctx.value() == deposit_ * n, "register_batch: wrong deposit");
  // One count read/write and ONE event for the whole batch — the
  // amortization the paper credits with halving per-member registration
  // gas. Peers fold the batched event into a single root transition, so
  // intermediate roots never exist on- or off-chain.
  const std::uint64_t base = ctx.sload(count_key()).limb[0];
  Bytes packed_pks;
  packed_pks.reserve(std::size_t{n} * 32);
  for (std::uint32_t i = 0; i < n; ++i) {
    const U256 pk = read_u256(r);
    ctx.require(!pk.is_zero(), "zero identity commitment");
    ctx.sstore(member_key(base + i), pk);
    const Bytes pk_be = u256_to_bytes_be(pk);
    packed_pks.insert(packed_pks.end(), pk_be.begin(), pk_be.end());
  }
  ctx.sstore(count_key(), U256{base + n});
  ctx.emit("MembersRegistered", {U256{base}, U256{n}},
           std::move(packed_pks));
  return {};
}

Bytes RlnMembershipContract::do_withdraw_batch(CallContext& ctx,
                                               BytesView calldata) {
  ByteReader r(calldata);
  const std::uint32_t n = r.read_u32();
  ctx.require(n > 0, "withdraw_batch: empty batch");
  // Records are applied in calldata order; each auth path must be valid
  // against the tree state after the preceding removals in the batch, so
  // partial-view peers can replay them sequentially from the one event.
  ByteWriter event_data;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Fr sk = read_fr(r);
    const std::uint64_t index = r.read_u64();
    const Bytes path = r.read_bytes();
    ctx.charge_poseidon();
    const U256 pk = hash::poseidon1(sk).to_u256();
    const U256 stored = ctx.sload(member_key(index));
    ctx.require(!stored.is_zero(), "withdraw_batch: member slot empty");
    ctx.require(stored == pk, "withdraw_batch: identity key mismatch");
    ctx.sstore(member_key(index), U256{});
    event_data.write_u64(index);
    event_data.write_raw(u256_to_bytes_be(pk));
    event_data.write_bytes(path);
  }
  // One payout transfer and one event amortize the per-removal overhead.
  ctx.transfer_out(ctx.sender(), deposit_ * n);
  ctx.emit("MembersWithdrawn", {U256{n}, ctx.sender().to_u256()},
           std::move(event_data).take());
  return {};
}

Bytes RlnMembershipContract::do_commit_slash(CallContext& ctx,
                                             BytesView calldata) {
  ByteReader r(calldata);
  const U256 commitment = read_u256(r);
  ctx.gas().charge(ctx.schedule().keccak_base + 2 * ctx.schedule().keccak_word);
  const U256 key = commitment_key(commitment);
  ctx.require(ctx.sload(key).is_zero(), "commit_slash: already committed");
  ctx.sstore(key, U256{ctx.block_number()});
  ctx.emit("SlashCommitted", {commitment});
  return {};
}

void RlnMembershipContract::remove_member(CallContext& ctx, const Fr& sk,
                                          std::uint64_t index,
                                          const Address& payee,
                                          const char* event_name,
                                          BytesView path_data) {
  ctx.charge_poseidon();
  const U256 pk = hash::poseidon1(sk).to_u256();
  const U256 stored = ctx.sload(member_key(index));
  ctx.require(!stored.is_zero(), "member slot already empty");
  ctx.require(stored == pk, "identity key does not match member");
  ctx.sstore(member_key(index), U256{});
  ctx.transfer_out(payee, deposit_);
  ctx.emit(event_name, {U256{index}, pk, payee.to_u256()},
           Bytes(path_data.begin(), path_data.end()));
}

Bytes RlnMembershipContract::do_reveal_slash(CallContext& ctx,
                                             BytesView calldata) {
  ByteReader r(calldata);
  const Fr sk = read_fr(r);
  const U256 salt = read_u256(r);
  const std::uint64_t index = r.read_u64();

  ctx.gas().charge(ctx.schedule().keccak_base + 3 * ctx.schedule().keccak_word);
  const U256 commitment = make_slash_commitment(sk, salt, ctx.sender());
  const U256 key = commitment_key(commitment);
  const U256 commit_block = ctx.sload(key);
  ctx.require(!commit_block.is_zero(), "reveal_slash: no matching commitment");
  // The reveal must come strictly after the commit's block, so a mempool
  // observer cannot copy the reveal into the same block (paper §III-F race).
  ctx.require(commit_block.limb[0] < ctx.block_number(),
              "reveal_slash: commit not yet mature");
  ctx.sstore(key, U256{});
  remove_member(ctx, sk, index, ctx.sender(), "MemberSlashed",
                r.read_raw(r.remaining()));
  return {};
}

Bytes RlnMembershipContract::do_slash_direct(CallContext& ctx,
                                             BytesView calldata) {
  ByteReader r(calldata);
  const Fr sk = read_fr(r);
  const std::uint64_t index = r.read_u64();
  // No commitment: first transaction to land wins the reward — the
  // front-running race the commit-reveal scheme exists to prevent.
  remove_member(ctx, sk, index, ctx.sender(), "MemberSlashed",
                r.read_raw(r.remaining()));
  return {};
}

Bytes RlnMembershipContract::do_withdraw(CallContext& ctx, BytesView calldata) {
  ByteReader r(calldata);
  const Fr sk = read_fr(r);
  const std::uint64_t index = r.read_u64();
  // Knowing sk proves ownership; the deposit returns to the caller. This is
  // the "escape punishment by early withdrawal" open problem of §IV-B.
  remove_member(ctx, sk, index, ctx.sender(), "MemberWithdrawn",
                r.read_raw(r.remaining()));
  return {};
}

std::uint64_t RlnMembershipContract::member_count_view() const {
  return storage().peek(count_key()).limb[0];
}

ff::U256 RlnMembershipContract::member_at_view(std::uint64_t index) const {
  return storage().peek(member_key(index));
}

}  // namespace waku::chain
