#include "chain/semaphore_contract.hpp"

#include "common/serde.hpp"
#include "hash/keccak256.hpp"
#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"

namespace waku::chain {

using ff::Fr;
using ff::U256;

SemaphoreContract::SemaphoreContract(std::size_t tree_depth, Gwei deposit)
    : depth_(tree_depth), deposit_(deposit) {}

U256 SemaphoreContract::nullifier_key(const U256& nullifier) {
  Bytes preimage = {0x03};
  const Bytes n = u256_to_bytes_be(nullifier);
  preimage.insert(preimage.end(), n.begin(), n.end());
  return ff::u256_from_bytes_be(hash::keccak256_bytes(preimage));
}

U256 SemaphoreContract::signal_key(std::uint64_t signal_index,
                                   std::uint64_t word) {
  return U256{word, signal_index, 3, 0};
}

Bytes SemaphoreContract::call(CallContext& ctx, const std::string& method,
                              BytesView calldata) {
  if (method == "register") return do_register(ctx, calldata);
  if (method == "remove") return do_remove(ctx, calldata);
  if (method == "broadcast_signal") return do_broadcast(ctx, calldata);
  if (method == "root") return u256_to_bytes_be(ctx.sload(root_key()));
  if (method == "member_count") {
    ByteWriter w;
    w.write_u64(ctx.sload(count_key()).limb[0]);
    return std::move(w).take();
  }
  throw Revert("unknown method: " + method);
}

void SemaphoreContract::set_leaf(CallContext& ctx, std::uint64_t index,
                                 const Fr& leaf) {
  // Walk the path to the root: at each level, load the sibling, hash, and
  // store the parent — the O(depth) on-chain cost the paper's §III-A
  // redesign eliminates.
  ctx.sstore(node_key(0, index), leaf.to_u256());
  Fr cur = leaf;
  std::uint64_t idx = index;
  for (std::size_t level = 0; level < depth_; ++level) {
    const U256 sibling_raw = ctx.sload(node_key(level, idx ^ 1));
    const Fr sibling = sibling_raw.is_zero()
                           ? merkle::zero_at(level)
                           : Fr::from_u256_reduce(sibling_raw);
    ctx.charge_poseidon();
    cur = (idx & 1) ? hash::poseidon2(sibling, cur)
                    : hash::poseidon2(cur, sibling);
    idx >>= 1;
    ctx.sstore(node_key(level + 1, idx), cur.to_u256());
  }
  ctx.sstore(root_key(), cur.to_u256());
}

Bytes SemaphoreContract::do_register(CallContext& ctx, BytesView calldata) {
  ctx.require(ctx.value() == deposit_, "register: wrong deposit");
  ByteReader r(calldata);
  const U256 pk_raw = ff::u256_from_bytes_be(r.read_raw(32));
  ctx.require(!pk_raw.is_zero(), "zero identity commitment");
  const std::uint64_t index = ctx.sload(count_key()).limb[0];
  ctx.require(index < (std::uint64_t{1} << depth_), "tree full");
  set_leaf(ctx, index, Fr::from_u256_reduce(pk_raw));
  ctx.sstore(count_key(), U256{index + 1});
  ctx.emit("MemberRegistered", {U256{index}, pk_raw});
  return {};
}

Bytes SemaphoreContract::do_remove(CallContext& ctx, BytesView calldata) {
  ByteReader r(calldata);
  const std::uint64_t index = r.read_u64();
  const U256 existing = ctx.sload(node_key(0, index));
  ctx.require(!existing.is_zero(), "remove: empty slot");
  set_leaf(ctx, index, Fr::zero());
  ctx.emit("MemberRemoved", {U256{index}, existing});
  return {};
}

Bytes SemaphoreContract::do_broadcast(CallContext& ctx, BytesView calldata) {
  ByteReader r(calldata);
  const U256 nullifier = ff::u256_from_bytes_be(r.read_raw(32));
  const std::uint32_t len = r.read_u32();
  const Bytes payload = r.read_raw(len);

  // On-chain Groth16 verification of the membership proof.
  ctx.gas().charge(kGroth16VerifyGas);

  // Double-signal check via the nullifier map held in contract storage.
  const U256 nkey = nullifier_key(nullifier);
  ctx.gas().charge(ctx.schedule().keccak_base + 2 * ctx.schedule().keccak_word);
  ctx.require(ctx.sload(nkey).is_zero(), "double signal");
  ctx.sstore(nkey, U256{1});

  // Store the signal payload word by word — Semaphore keeps messages in
  // contract state (paper §III-A adjustment 2 removes exactly this).
  const std::uint64_t signal_index = ctx.sload(signal_count_key()).limb[0];
  for (std::uint64_t w = 0; w * 32 < payload.size(); ++w) {
    Bytes word(32, 0);
    const std::size_t take = std::min<std::size_t>(32, payload.size() - w * 32);
    std::copy_n(payload.begin() + static_cast<std::ptrdiff_t>(w * 32), take,
                word.begin());
    ctx.sstore(signal_key(signal_index, w), ff::u256_from_bytes_be(word));
  }
  ctx.sstore(signal_count_key(), U256{signal_index + 1});
  ctx.emit("SignalBroadcast", {U256{signal_index}, nullifier});
  return {};
}

U256 SemaphoreContract::root_view() const {
  return storage().peek(root_key());
}

std::uint64_t SemaphoreContract::member_count_view() const {
  return storage().peek(count_key()).limb[0];
}

std::uint64_t SemaphoreContract::signal_count_view() const {
  return storage().peek(signal_count_key()).limb[0];
}

}  // namespace waku::chain
