// Core types of the simulated Ethereum chain: addresses, money, events,
// transactions, receipts, blocks.
//
// Money is denominated in gwei (1e9 gwei = 1 ETH) so balances, deposits and
// gas fees fit comfortably in 64 bits.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "ff/u256.hpp"

namespace waku::chain {

/// 20-byte account/contract address.
struct Address {
  std::array<std::uint8_t, 20> bytes{};

  static Address from_u64(std::uint64_t v) {
    Address a;
    for (int i = 0; i < 8; ++i) {
      a.bytes[19 - static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
    return a;
  }

  [[nodiscard]] std::string hex() const {
    return to_hex0x(BytesView(bytes.data(), bytes.size()));
  }

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  /// Zero-extended 256-bit form (for event topics, Ethereum-style).
  [[nodiscard]] ff::U256 to_u256() const {
    Bytes padded(12, 0);
    padded.insert(padded.end(), bytes.begin(), bytes.end());
    return ff::u256_from_bytes_be(padded);
  }
};

struct AddressHash {
  std::size_t operator()(const Address& a) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint8_t b : a.bytes) h = (h ^ b) * 1099511628211ULL;
    return static_cast<std::size_t>(h);
  }
};

/// Amount in gwei.
using Gwei = std::uint64_t;

constexpr Gwei kGweiPerEth = 1'000'000'000ULL;

/// An emitted contract event (log).
struct Event {
  Address contract;
  std::string name;
  std::vector<ff::U256> topics;
  Bytes data;
  std::uint64_t block_number = 0;
};

/// Binary codec for events: what an event costs on the wire when a peer
/// must fetch history (the cold-bootstrap byte accounting in
/// bench_bootstrap) and the frame format for serving event ranges to
/// peers that cannot reach the chain directly.
Bytes serialize_event(const Event& event);
Event deserialize_event(BytesView bytes);

/// Result of executing a transaction inside a block.
struct TxReceipt {
  bool success = false;
  std::string revert_reason;
  std::uint64_t gas_used = 0;
  Gwei fee_paid = 0;
  std::uint64_t block_number = 0;
  std::vector<Event> events;
  Bytes return_data;
};

/// A transaction: native-dispatch call of `method` on the contract at `to`.
struct Transaction {
  Address from;
  Address to;
  std::string method;
  Bytes calldata;
  Gwei value = 0;
  std::uint64_t gas_limit = 10'000'000;
  Gwei gas_price = 50;  // gwei per gas
};

/// A mined block.
struct Block {
  std::uint64_t number = 0;
  std::uint64_t timestamp_ms = 0;
  std::vector<TxReceipt> receipts;
};

}  // namespace waku::chain
