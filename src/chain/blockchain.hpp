// Discrete-block Ethereum simulator: a transaction pool, block production
// with configurable interval, per-account gwei balances, gas accounting,
// and an event subscription feed (the contract "log" stream peers use to
// keep their identity-commitment trees in sync, paper §III-C).
//
// Time is externally driven: callers (or the network simulator) invoke
// mine_block(now) — registration latency experiments (E9/E10) emerge from
// the block interval exactly as the paper's §IV-A discussion describes.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "chain/contract.hpp"
#include "chain/types.hpp"

namespace waku::chain {

class Blockchain {
 public:
  struct Config {
    std::uint64_t block_interval_ms = 12'000;  ///< mainnet-ish cadence
    std::uint64_t block_gas_limit = 30'000'000;
    GasSchedule schedule;
  };

  Blockchain() : Blockchain(Config{}) {}
  explicit Blockchain(Config config);

  // -- Accounts -------------------------------------------------------------

  void create_account(const Address& addr, Gwei balance);
  [[nodiscard]] Gwei balance(const Address& addr) const;

  // -- Contracts ------------------------------------------------------------

  /// Deploys a contract; the chain owns it. Returns its address.
  Address deploy(std::unique_ptr<Contract> contract);

  /// Typed access to a deployed contract (tests/off-chain tooling).
  template <typename T>
  T& contract_at(const Address& addr) {
    return dynamic_cast<T&>(*contracts_.at(addr));
  }

  // -- Transactions ---------------------------------------------------------

  /// Queues a transaction; it executes in the next mined block.
  /// Returns a handle for locating the receipt.
  std::uint64_t submit(Transaction tx);

  /// Mines a block at `timestamp_ms`, executing all pending transactions
  /// in submission order. Notifies event subscribers.
  const Block& mine_block(std::uint64_t timestamp_ms);

  /// Read-only contract call: no gas charge, no state change visible.
  Bytes static_call(const Address& to, const std::string& method,
                    BytesView calldata);

  /// Receipt for a submitted transaction, if its block has been mined.
  [[nodiscard]] std::optional<TxReceipt> receipt(std::uint64_t tx_handle) const;

  // -- Chain state ----------------------------------------------------------

  [[nodiscard]] std::uint64_t height() const { return blocks_.size(); }
  [[nodiscard]] const Block& block(std::uint64_t number) const;
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Registers a callback invoked for every event of every newly mined
  /// block (the eth_subscribe("logs") analog). Returns a subscription id
  /// for unsubscribe_events (a restarting node must detach its old
  /// callback before re-subscribing).
  std::uint64_t subscribe_events(std::function<void(const Event&)> callback);
  void unsubscribe_events(std::uint64_t subscription_id);

  // -- Event history (the eth_getLogs analog) -------------------------------
  //
  // Every mined event is retained in emission order under a global
  // sequence number (0-based). A durable node persists the count of events
  // it has applied as its replay cursor; after a restart it resumes from
  // that cursor instead of genesis.

  /// Total events emitted so far (== the next event's sequence number).
  [[nodiscard]] std::uint64_t event_count() const {
    return event_log_.size();
  }
  /// Replays events [from_seq, event_count()) in emission order.
  void replay_events(std::uint64_t from_seq,
                     const std::function<void(const Event&)>& fn) const;

 private:
  TxReceipt execute(const Transaction& tx, std::uint64_t block_number);

  Config config_;
  std::unordered_map<Address, Gwei, AddressHash> balances_;
  std::unordered_map<Address, std::unique_ptr<Contract>, AddressHash>
      contracts_;
  std::deque<std::pair<std::uint64_t, Transaction>> pending_;  // (handle, tx)
  std::vector<Block> blocks_;
  std::vector<std::optional<TxReceipt>> receipts_;  // indexed by tx handle
  std::uint64_t next_handle_ = 0;
  // Contract addresses live in a distinctive range so ad-hoc test account
  // addresses (small integers) can never collide with them.
  std::uint64_t next_contract_id_ = 0xC0DE00000000ULL;
  // Slot index == subscription id; unsubscribed slots become null.
  std::vector<std::function<void(const Event&)>> subscribers_;
  std::vector<Event> event_log_;  // every mined event, emission order

  friend class CallContext;
  void internal_transfer(const Address& from, const Address& to, Gwei amount);

  bool balance_journal_active_ = false;
  std::vector<std::tuple<Address, Gwei, Address>> balance_journal_;
};

}  // namespace waku::chain
