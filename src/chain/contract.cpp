#include "chain/contract.hpp"

#include "chain/blockchain.hpp"

namespace waku::chain {

ff::U256 Storage::load(GasMeter& gas, const ff::U256& key) const {
  gas.charge(gas.schedule().sload);
  return peek(key);
}

ff::U256 Storage::peek(const ff::U256& key) const {
  const auto it = slots_.find(key);
  return it == slots_.end() ? ff::U256{} : it->second;
}

void Storage::store(GasMeter& gas, const ff::U256& key,
                    const ff::U256& value) {
  const ff::U256 old = peek(key);
  const GasSchedule& s = gas.schedule();
  if (old.is_zero() && !value.is_zero()) {
    gas.charge(s.sstore_set);
  } else if (!old.is_zero() && value.is_zero()) {
    gas.charge(s.sstore_clear);
    gas.add_refund(s.sstore_clear_refund);
  } else {
    gas.charge(s.sstore_update);
  }
  if (journaling_) journal_.emplace_back(key, old);
  raw_set(key, value);
}

void Storage::raw_set(const ff::U256& key, const ff::U256& value) {
  if (value.is_zero()) {
    slots_.erase(key);
  } else {
    slots_[key] = value;
  }
}

void Storage::begin_journal() {
  journaling_ = true;
  journal_.clear();
}

void Storage::commit_journal() {
  journaling_ = false;
  journal_.clear();
}

void Storage::rollback_journal() {
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    raw_set(it->first, it->second);
  }
  journaling_ = false;
  journal_.clear();
}

void CallContext::emit(std::string name, std::vector<ff::U256> topics,
                       Bytes data) {
  const GasSchedule& s = schedule();
  gas_.charge(s.log_base + s.log_topic * topics.size() +
              s.log_data_byte * data.size());
  Event ev;
  ev.contract = self_;
  ev.name = std::move(name);
  ev.topics = std::move(topics);
  ev.data = std::move(data);
  ev.block_number = block_number_;
  events_.push_back(std::move(ev));
}

void CallContext::transfer_out(const Address& to, Gwei amount) {
  gas_.charge(schedule().transfer_stipend);
  chain_.internal_transfer(self_, to, amount);
}

}  // namespace waku::chain
