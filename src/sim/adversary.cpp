#include "sim/adversary.hpp"

#include "common/serde.hpp"
#include "merkle/merkle_tree.hpp"

namespace waku::sim {

using rln::WakuRlnRelayNode;

Bytes Adversary::spam_payload(const std::string& body) const {
  return to_bytes(std::string(kSpamTag) + body);
}

// -- RateLimitFlooder --------------------------------------------------------

void RateLimitFlooder::on_tick(AdversaryContext& ctx) {
  if (!ctx.harness.alive(slot_)) return;
  WakuRlnRelayNode& node = ctx.harness.node(slot_);
  const std::uint64_t epoch = node.current_epoch();
  if (epoch != current_epoch_) {
    current_epoch_ = epoch;
    sent_this_epoch_ = 0;
  }
  if (sent_this_epoch_ >= burst_per_epoch_) return;
  // One message per tick spreads the burst across the epoch — the shape
  // that maximizes deliveries before the first conflict is observed.
  const auto status = node.force_publish(
      spam_payload("flood " + std::to_string(epoch) + "/" +
                   std::to_string(sent_this_epoch_)),
      content_topic_);
  if (status == WakuRlnRelayNode::PublishStatus::kOk) {
    ++sent_this_epoch_;
    ++spam_sent_;
    ctx.metrics.counter("spam.sent").inc();
  }
}

// -- EpochBoundaryStraddler --------------------------------------------------

void EpochBoundaryStraddler::on_tick(AdversaryContext& ctx) {
  if (!ctx.harness.alive(slot_)) return;
  WakuRlnRelayNode& node = ctx.harness.node(slot_);
  const std::uint64_t epoch = node.current_epoch();
  if (epoch == last_published_epoch_) return;  // quota for this epoch used

  const std::uint64_t epoch_len =
      node.config().validator.epoch.epoch_length_ms;
  const net::TimeMs local =
      ctx.harness.network().local_time(node.node_id());
  const std::uint64_t into_epoch = local % epoch_len;
  // Even epochs publish in the last tick before the boundary, odd epochs
  // in the first tick after it — adjacent pairs land seconds apart while
  // every epoch still carries exactly one message.
  const bool fire = (epoch % 2 == 0)
                        ? (epoch_len - into_epoch <= ctx.tick_ms)
                        : (into_epoch <= ctx.tick_ms);
  if (!fire) return;
  const auto status =
      node.force_publish(spam_payload("straddle " + std::to_string(epoch)));
  if (status == WakuRlnRelayNode::PublishStatus::kOk) {
    last_published_epoch_ = epoch;
    ++spam_sent_;
    ctx.metrics.counter("spam.sent").inc();
  }
}

// -- InvalidProofFlooder -----------------------------------------------------

void InvalidProofFlooder::on_tick(AdversaryContext& ctx) {
  if (!ctx.harness.alive(slot_)) return;
  WakuRlnRelayNode& node = ctx.harness.node(slot_);
  for (std::uint64_t i = 0; i < per_tick_; ++i) {
    node.publish_with_invalid_proof(
        spam_payload("garbage " + std::to_string(spam_sent_)),
        content_topic_);
    ++spam_sent_;
    ctx.metrics.counter("spam.sent").inc();
  }
}

// -- StaleRootReplayer -------------------------------------------------------

void StaleRootReplayer::on_tick(AdversaryContext& ctx) {
  if (!ctx.harness.alive(slot_)) return;
  WakuRlnRelayNode& node = ctx.harness.node(slot_);
  for (std::uint64_t i = 0; i < per_tick_; ++i) {
    node.publish_with_stale_root(
        spam_payload("stale " + std::to_string(spam_sent_)),
        content_topic_);
    ++spam_sent_;
    ctx.metrics.counter("spam.sent").inc();
  }
}

// -- SplitEquivocator --------------------------------------------------------

void SplitEquivocator::on_tick(AdversaryContext& ctx) {
  if (!ctx.harness.alive(slot_)) return;
  WakuRlnRelayNode& node = ctx.harness.node(slot_);
  const std::uint64_t epoch = node.current_epoch();
  if (epoch == last_split_epoch_) return;
  const bool sent = node.force_publish_split(
      spam_payload("split-a " + std::to_string(epoch)),
      spam_payload("split-b " + std::to_string(epoch)));
  if (sent) {
    last_split_epoch_ = epoch;
    spam_sent_ += 2;
    ctx.metrics.counter("spam.sent").inc(2);
  }
}

// -- DepositChurner ----------------------------------------------------------

void DepositChurner::on_tick(AdversaryContext& ctx) {
  if (next_slot_ >= slots_.size()) return;  // every membership spent
  const std::size_t slot = slots_[next_slot_];
  if (!ctx.harness.alive(slot)) {
    ++next_slot_;
    return;
  }
  WakuRlnRelayNode& node = ctx.harness.node(slot);
  if (!node.is_registered()) {
    ++next_slot_;  // already slashed or withdrawn
    return;
  }
  const std::uint64_t epoch = node.current_epoch();
  if (epoch == last_churn_epoch_) return;  // one churn cycle per epoch
  last_churn_epoch_ = epoch;

  for (std::uint64_t i = 0; i < burst_; ++i) {
    const auto status = node.force_publish(spam_payload(
        "churn " + std::to_string(slot) + "/" + std::to_string(i)));
    if (status == WakuRlnRelayNode::PublishStatus::kOk) {
      ++spam_sent_;
      ctx.metrics.counter("spam.sent").inc();
    }
  }

  // Front-run the inevitable reveal: exit with the deposit at a gas price
  // that outbids the slasher (the §IV-B escape race).
  const std::uint64_t index = *node.group().own_index();
  ByteWriter w;
  w.write_raw(node.identity().sk.to_bytes_be());
  w.write_u64(index);
  w.write_raw(merkle::serialize_path(node.group().path_of(index)));
  chain::Transaction tx;
  tx.from = node.account();
  tx.to = ctx.harness.contract();
  tx.method = "withdraw";
  tx.calldata = std::move(w).take();
  tx.gas_price = 100;
  ctx.harness.chain().submit(std::move(tx));
  ++withdraw_attempts_;
  ctx.metrics.counter("churn.withdraw_attempts").inc();
  ++next_slot_;
}

// -- StaleCheckpointService --------------------------------------------------

StaleCheckpointService::StaleCheckpointService(net::Network& network,
                                               Bytes signed_checkpoint)
    : network_(network),
      signed_checkpoint_(std::move(signed_checkpoint)),
      id_(network.add_node(this)) {}

void StaleCheckpointService::on_message(net::NodeId from, BytesView payload) {
  ByteReader r(payload);
  if (static_cast<rln::LightFrame>(r.read_u8()) !=
      rln::LightFrame::kCheckpointReq) {
    return;  // only the bootstrap path is impersonated
  }
  ++served_;
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(rln::LightFrame::kCheckpointResp));
  w.write_bytes(signed_checkpoint_);
  network_.send(id_, from, std::move(w).take());
}

}  // namespace waku::sim
