// Adversary catalog for the scenario engine: pluggable attacker strategies
// driven once per scenario tick against an RlnHarness deployment. Each
// strategy models one evasion of the paper's economic spam protection:
//
//   RateLimitFlooder     k > 1 valid-proof publishes per epoch — the
//                        canonical double-signal spammer §III-F slashes;
//   EpochBoundaryStraddler  one message per epoch, clustered around epoch
//                        boundaries (legal bursts of 2 in seconds) — must
//                        NOT be slashed, bounding honest false positives;
//   InvalidProofFlooder  garbage proofs — resource-exhaustion traffic the
//                        peer-score layer graylists (no slashing material);
//   StaleRootReplayer    well-formed bundles against roots outside every
//                        validator's window — must die in the O(1) root
//                        stage, never reaching the SNARK verifier;
//   SplitEquivocator     conflicting shares shown to disjoint mesh halves
//                        so no first-hop peer sees both — relay overlap
//                        must still reunite the shares and slash;
//   DepositChurner       join / spam / withdraw-front-run cycles — the
//                        §IV-B "escape punishment by early withdrawal"
//                        open problem, measured as escape rate;
//   StaleCheckpointService  a light-bootstrap service replaying an old but
//                        correctly signed checkpoint (the eclipse payload;
//                        campaign orchestration lives in scenario.hpp).
#pragma once

#include <string>
#include <vector>

#include "rln/light_client.hpp"
#include "sim/metrics.hpp"

namespace waku::sim {

struct AdversaryContext {
  rln::RlnHarness& harness;
  MetricsRegistry& metrics;
  Rng& rng;
  net::TimeMs tick_ms;
};

class Adversary {
 public:
  virtual ~Adversary() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Harness slots this adversary controls — excluded from honest traffic
  /// generation and honest-delivery accounting.
  [[nodiscard]] virtual std::vector<std::size_t> controlled_nodes() const = 0;
  virtual void on_phase_start(AdversaryContext& /*ctx*/) {}
  virtual void on_tick(AdversaryContext& ctx) = 0;

  /// Spam messages this adversary has injected into the network.
  [[nodiscard]] std::uint64_t spam_sent() const { return spam_sent_; }

 protected:
  /// kSpamTag-prefixed payload so the HarnessProbe classifies deliveries.
  [[nodiscard]] Bytes spam_payload(const std::string& body) const;

  std::uint64_t spam_sent_ = 0;
};

/// Publishes up to `burst_per_epoch` valid-proof messages per epoch from
/// one registered member (one per tick, so the flood spans the epoch).
/// Stops producing once slashed — force_publish refuses unregistered.
/// `content_topic` aims the flood at one relay shard (shard-targeted
/// attacks must stay confined to the shard the topic maps onto).
class RateLimitFlooder : public Adversary {
 public:
  RateLimitFlooder(std::size_t slot, std::uint64_t burst_per_epoch,
                   std::string content_topic = rln::kDefaultContentTopic)
      : slot_(slot),
        burst_per_epoch_(burst_per_epoch),
        content_topic_(std::move(content_topic)) {}

  [[nodiscard]] std::string name() const override { return "flooder"; }
  [[nodiscard]] std::vector<std::size_t> controlled_nodes() const override {
    return {slot_};
  }
  void on_tick(AdversaryContext& ctx) override;

 private:
  std::size_t slot_;
  std::uint64_t burst_per_epoch_;
  std::string content_topic_;
  std::uint64_t current_epoch_ = ~std::uint64_t{0};
  std::uint64_t sent_this_epoch_ = 0;
};

/// One message per epoch, placed adjacent to epoch boundaries (end of even
/// epochs, start of odd ones) — back-to-back bursts that stay inside the
/// 1-per-epoch quota. The verdict must show delivery without slashing.
class EpochBoundaryStraddler : public Adversary {
 public:
  explicit EpochBoundaryStraddler(std::size_t slot) : slot_(slot) {}

  [[nodiscard]] std::string name() const override { return "straddler"; }
  [[nodiscard]] std::vector<std::size_t> controlled_nodes() const override {
    return {slot_};
  }
  void on_tick(AdversaryContext& ctx) override;

 private:
  std::size_t slot_;
  std::uint64_t last_published_epoch_ = ~std::uint64_t{0};
};

/// Floods garbage proofs (`per_tick` each tick) — cheap to generate, dies
/// at kRejectBadProof, and the sender is graylisted by peer scoring.
/// Shard-targetable via `content_topic`.
class InvalidProofFlooder : public Adversary {
 public:
  InvalidProofFlooder(std::size_t slot, std::uint64_t per_tick,
                      std::string content_topic = rln::kDefaultContentTopic)
      : slot_(slot),
        per_tick_(per_tick),
        content_topic_(std::move(content_topic)) {}

  [[nodiscard]] std::string name() const override { return "invalid-proof"; }
  [[nodiscard]] std::vector<std::size_t> controlled_nodes() const override {
    return {slot_};
  }
  void on_tick(AdversaryContext& ctx) override;

 private:
  std::size_t slot_;
  std::uint64_t per_tick_;
  std::string content_topic_;
};

/// Floods bundles carrying roots no validator window contains — must be
/// settled by the O(1) root stage (pipeline.stale_root), not the verifier.
/// Shard-targetable via `content_topic` (a coalition pairs it with a
/// flooder on the same shard).
class StaleRootReplayer : public Adversary {
 public:
  StaleRootReplayer(std::size_t slot, std::uint64_t per_tick,
                    std::string content_topic = rln::kDefaultContentTopic)
      : slot_(slot),
        per_tick_(per_tick),
        content_topic_(std::move(content_topic)) {}

  [[nodiscard]] std::string name() const override { return "stale-root"; }
  [[nodiscard]] std::vector<std::size_t> controlled_nodes() const override {
    return {slot_};
  }
  void on_tick(AdversaryContext& ctx) override;

 private:
  std::size_t slot_;
  std::uint64_t per_tick_;
  std::string content_topic_;
};

/// Once per epoch, sends two conflicting same-epoch shares to disjoint
/// halves of its mesh neighborhood (WakuRlnRelayNode::force_publish_split).
class SplitEquivocator : public Adversary {
 public:
  explicit SplitEquivocator(std::size_t slot) : slot_(slot) {}

  [[nodiscard]] std::string name() const override {
    return "split-equivocator";
  }
  [[nodiscard]] std::vector<std::size_t> controlled_nodes() const override {
    return {slot_};
  }
  void on_tick(AdversaryContext& ctx) override;

 private:
  std::size_t slot_;
  std::uint64_t last_split_epoch_ = ~std::uint64_t{0};
};

/// Join/spam/withdraw churn: each epoch one controlled member double-
/// signals `burst` times, then immediately submits a high-gas withdraw to
/// exit with the deposit before the commit-reveal slash can land (§IV-B).
/// Once every slot has churned the adversary idles.
class DepositChurner : public Adversary {
 public:
  DepositChurner(std::vector<std::size_t> slots, std::uint64_t burst)
      : slots_(std::move(slots)), burst_(burst) {}

  [[nodiscard]] std::string name() const override { return "churner"; }
  [[nodiscard]] std::vector<std::size_t> controlled_nodes() const override {
    return slots_;
  }
  void on_tick(AdversaryContext& ctx) override;

  [[nodiscard]] std::uint64_t withdraw_attempts() const {
    return withdraw_attempts_;
  }

 private:
  std::vector<std::size_t> slots_;
  std::uint64_t burst_;
  std::size_t next_slot_ = 0;
  std::uint64_t last_churn_epoch_ = ~std::uint64_t{0};
  std::uint64_t withdraw_attempts_ = 0;
};

/// Attacker-run light-bootstrap service: answers kCheckpointReq with a
/// canned (stale but correctly signed) checkpoint. The eclipse campaign
/// parks a victim behind lossy links so this is the only service that
/// answers.
class StaleCheckpointService : public net::NetNode {
 public:
  StaleCheckpointService(net::Network& network, Bytes signed_checkpoint);

  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] std::uint64_t served() const { return served_; }

 private:
  net::Network& network_;
  Bytes signed_checkpoint_;
  net::NodeId id_;
  std::uint64_t served_ = 0;
};

}  // namespace waku::sim
