#include "sim/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "chain/rln_contract.hpp"
#include "common/expect.hpp"
#include "rln/checkpoint.hpp"

namespace waku::sim {

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      harness_(config_.harness),
      probe_(harness_, metrics_),
      traffic_rng_(config_.harness.seed ^ 0x7AF1C0DEULL) {}

Scenario& Scenario::add_phase(PhaseSpec phase) {
  phases_.push_back(std::move(phase));
  return *this;
}

std::uint64_t Scenario::epoch_now() {
  return config_.harness.node.validator.epoch.epoch_at(harness_.sim().now());
}

void Scenario::sample_if_epoch_turned() {
  const std::uint64_t epoch = epoch_now();
  if (epoch == last_sampled_epoch_) return;
  last_sampled_epoch_ = epoch;
  probe_.sample(epoch);
  scrape_fleet(epoch);
}

void Scenario::collect_propagation() {
  if (config_.harness.node.obs.trace.sample_every == 0) return;
  std::map<shard::ShardId, std::size_t> subscribers;
  for (std::size_t i = 0; i < harness_.size(); ++i) {
    if (!harness_.alive(i)) continue;
    rln::WakuRlnRelayNode& node = harness_.node(i);
    // Adversary publishes bypass the traced publish path; anchoring
    // their node ids routes those trees to forensics instead of the
    // honest-reconstruction count.
    if (is_adversary_slot(i)) propagation_.mark_adversary(node.node_id());
    propagation_.ingest(node.node_id(), node.trace_dump());
    propagation_.ingest_flight(node.node_id(),
                               node.flight_recorder().events());
    for (const shard::ShardId s : node.validator().subscribed()) {
      ++subscribers[s];
    }
  }
  // Reachability denominators follow the CURRENT subscription map, so a
  // kill mid-campaign shrinks the ideal receiver set with it.
  for (const auto& [s, count] : subscribers) {
    propagation_.set_subscribers(s, count);
  }
}

void Scenario::scrape_fleet(std::uint64_t epoch) {
  if (epoch == last_fleet_epoch_) return;
  last_fleet_epoch_ = epoch;
  std::uint64_t spam_total = 0;
  for (const Adversary* adversary : all_adversaries_) {
    spam_total += adversary->spam_sent();
  }
  for (std::size_t i = 0; i < harness_.size(); ++i) {
    if (is_adversary_slot(i) || !harness_.alive(i)) continue;
    obs::NodeHealthSample s = harness_.node(i).health_sample();
    s.epoch = epoch;
    // Ground truth only the harness knows. Ideal delivery is "every
    // honest/spam message reaches every honest node", so each node's
    // share of the fleet-wide ideal is the cumulative sent total — the
    // aggregator's sums then reproduce the verdict's ratios.
    s.honest_delivered = probe_.node_honest_delivered(i);
    s.honest_ideal = honest_sent_;
    s.spam_delivered = probe_.node_spam_delivered(i);
    s.spam_sent = spam_total;
    fleet_.ingest(std::move(s));
  }
  // Harvest every node's trace rings BEFORE closing the row so the
  // epoch's fleet entry carries the propagation rollup it produced, and
  // feed the same numbers back to each node's self-monitor — that is
  // what arms the propagation-latency SLO rule for the operator loop.
  if (config_.harness.node.obs.trace.sample_every != 0) {
    collect_propagation();
    const obs::PropagationSummary ps = propagation_.summary();
    const double p95_ms = static_cast<double>(ps.p95_ns) / 1e6;
    fleet_.set_propagation(p95_ms, ps.redundancy_ratio, ps.reachability,
                           ps.incomplete_trees);
    for (std::size_t i = 0; i < harness_.size(); ++i) {
      if (is_adversary_slot(i) || !harness_.alive(i)) continue;
      harness_.node(i).set_propagation_health(p95_ms, ps.redundancy_ratio,
                                              ps.reachability,
                                              ps.incomplete_trees);
    }
  }
  fleet_.close_epoch(epoch);
}

void Scenario::generate_honest_traffic() {
  const double per_tick_p =
      config_.honest_rate_per_epoch *
      static_cast<double>(config_.tick_ms) /
      static_cast<double>(
          config_.harness.node.validator.epoch.epoch_length_ms);
  std::size_t publishers_seen = 0;
  for (std::size_t i = 0; i < harness_.size(); ++i) {
    if (is_adversary_slot(i) || !harness_.alive(i)) continue;
    ++publishers_seen;
    if (config_.honest_publishers != 0 &&
        publishers_seen > config_.honest_publishers) {
      break;  // sampled-sender mode for large deployments
    }
    if (!traffic_rng_.chance(per_tick_p)) continue;
    const auto status = harness_.node(i).try_publish(to_bytes(
        std::string(kHonestTag) + "n" + std::to_string(i) + "#" +
        std::to_string(honest_sent_)));
    if (status == rln::WakuRlnRelayNode::PublishStatus::kOk) {
      ++honest_sent_;
      metrics_.counter("honest.sent").inc();
    }
  }
}

void Scenario::run_phase(const PhaseSpec& phase) {
  AdversaryContext ctx{harness_, metrics_, traffic_rng_, config_.tick_ms};
  if (!phase.adversaries.empty() && !probe_.attack_start_ms().has_value()) {
    probe_.mark_attack_start();
  }
  for (Adversary* adversary : phase.adversaries) {
    adversary->on_phase_start(ctx);
  }
  const net::TimeMs phase_end = harness_.sim().now() + phase.duration_ms;
  while (harness_.sim().now() < phase_end) {
    const net::TimeMs step =
        std::min<net::TimeMs>(config_.tick_ms,
                              phase_end - harness_.sim().now());
    harness_.run_ms(step);
    if (phase.honest_traffic) generate_honest_traffic();
    for (Adversary* adversary : phase.adversaries) {
      adversary->on_tick(ctx);
    }
    sample_if_epoch_turned();
  }
}

Report Scenario::run() {
  WAKU_EXPECTS(!ran_);
  ran_ = true;

  // Who is honest is a property of the whole campaign, not of a phase.
  for (const PhaseSpec& phase : phases_) {
    for (Adversary* adversary : phase.adversaries) {
      if (std::find(all_adversaries_.begin(), all_adversaries_.end(),
                    adversary) == all_adversaries_.end()) {
        all_adversaries_.push_back(adversary);
      }
      for (const std::size_t slot : adversary->controlled_nodes()) {
        adversary_slots_.insert(slot);
      }
    }
  }

  harness_.register_all();

  // Member index -> honest/adversary classification for slash attribution
  // (an index outlives the membership it names; capture it while every
  // adversary is still registered). Per-adversary index sets feed the
  // coalition breakdown: with several strategies in one campaign, each
  // gets its own slash attribution.
  std::unordered_set<std::uint64_t> adversary_indices;
  std::vector<std::unordered_set<std::uint64_t>> indices_per_adversary(
      all_adversaries_.size());
  for (std::size_t a = 0; a < all_adversaries_.size(); ++a) {
    for (const std::size_t slot : all_adversaries_[a]->controlled_nodes()) {
      if (const auto index = harness_.node(slot).group().own_index()) {
        adversary_indices.insert(*index);
        indices_per_adversary[a].insert(*index);
      }
    }
  }

  for (const PhaseSpec& phase : phases_) run_phase(phase);

  // Drain: let in-flight publishes, validation windows, and slash txs
  // settle before judging delivery ratios.
  harness_.run_ms(config_.drain_ms);
  probe_.sample(epoch_now());
  scrape_fleet(epoch_now());  // final row: the post-drain steady state

  ScenarioVerdict verdict;
  verdict.scenario = config_.name;
  verdict.seed = config_.harness.seed;
  verdict.nodes = harness_.size();
  verdict.adversary_nodes = adversary_slots_.size();
  verdict.honest_nodes = harness_.size() - adversary_slots_.size();

  for (const Adversary* adversary : all_adversaries_) {
    verdict.spam_sent += adversary->spam_sent();
  }
  for (std::size_t i = 0; i < harness_.size(); ++i) {
    if (is_adversary_slot(i)) continue;
    verdict.spam_delivered_honest += probe_.node_spam_delivered(i);
    verdict.honest_delivered_honest += probe_.node_honest_delivered(i);
  }
  verdict.honest_sent = honest_sent_;
  // Ideal delivery: every spam/honest message reaching every honest node
  // (local delivery included) scores 1.0.
  const double honest_nodes = static_cast<double>(verdict.honest_nodes);
  verdict.spam_containment_ratio =
      verdict.spam_sent == 0
          ? 0
          : static_cast<double>(verdict.spam_delivered_honest) /
                (static_cast<double>(verdict.spam_sent) * honest_nodes);
  verdict.honest_delivery_ratio =
      verdict.honest_sent == 0
          ? 1.0
          : static_cast<double>(verdict.honest_delivered_honest) /
                (static_cast<double>(verdict.honest_sent) * honest_nodes);

  verdict.slashes = probe_.slashes().size();
  verdict.withdrawals = probe_.withdrawals().size();
  std::optional<net::TimeMs> first_adversary_slash;
  for (const HarnessProbe::SlashEvent& slash : probe_.slashes()) {
    if (adversary_indices.contains(slash.index)) {
      ++verdict.adversary_slashes;
      if (!first_adversary_slash.has_value()) {
        first_adversary_slash = slash.at_ms;
      }
    } else {
      ++verdict.honest_slashes;
    }
  }
  verdict.honest_false_positive_rate =
      verdict.honest_nodes == 0
          ? 0
          : static_cast<double>(verdict.honest_slashes) / honest_nodes;
  if (first_adversary_slash.has_value() &&
      probe_.attack_start_ms().has_value()) {
    const std::uint64_t latency =
        *first_adversary_slash - *probe_.attack_start_ms();
    verdict.time_to_slash_ms = latency;
    verdict.time_to_slash_epochs =
        (latency + config_.harness.node.validator.epoch.epoch_length_ms - 1) /
        config_.harness.node.validator.epoch.epoch_length_ms;
  }

  // Coalition breakdown: one verdict per distinct adversary strategy.
  for (std::size_t a = 0; a < all_adversaries_.size(); ++a) {
    AdversaryVerdict av;
    av.name = all_adversaries_[a]->name();
    av.spam_sent = all_adversaries_[a]->spam_sent();
    av.controlled_nodes = all_adversaries_[a]->controlled_nodes().size();
    std::optional<net::TimeMs> first;
    for (const HarnessProbe::SlashEvent& slash : probe_.slashes()) {
      if (!indices_per_adversary[a].contains(slash.index)) continue;
      ++av.slashes;
      if (!first.has_value()) first = slash.at_ms;
    }
    if (first.has_value() && probe_.attack_start_ms().has_value()) {
      av.time_to_slash_ms = *first - *probe_.attack_start_ms();
    }
    verdict.per_adversary.push_back(std::move(av));
  }

  verdict.fleet_timeline_json = fleet_.timeline_json();
  if (config_.harness.node.obs.trace.sample_every != 0) {
    verdict.propagation_json = propagation_.summary_json();
  }

  return Report{verdict, metrics_.to_json()};
}

// -- Eclipse campaign --------------------------------------------------------

namespace {

/// Registers a brand-new member straight on the contract (no node behind
/// it) — the membership churn the stale checkpoint is missing.
void register_external_member(rln::RlnHarness& h, std::uint64_t tag) {
  Rng rng(0xEC1000 + tag);
  const rln::Identity member = rln::Identity::generate(rng);
  const chain::Address account = chain::Address::from_u64(0xEC100000 + tag);
  h.chain().create_account(account, 10 * chain::kGweiPerEth);
  chain::Transaction tx;
  tx.from = account;
  tx.to = h.contract();
  tx.method = "register";
  tx.calldata = member.pk_bytes();
  tx.value = h.chain()
                 .contract_at<chain::RlnMembershipContract>(h.contract())
                 .deposit();
  h.chain().submit(std::move(tx));
}

}  // namespace

// -- Shard-targeted flood campaign -------------------------------------------

std::string ShardFloodOutcome::to_json() const {
  std::string out = "{";
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "\"num_shards\": %u, \"attacked_shard\": %u, "
                "\"spam_sent\": %llu, \"attacker_slashed\": %s, ",
                num_shards, attacked_shard,
                static_cast<unsigned long long>(spam_sent),
                attacker_slashed ? "true" : "false");
  out += buf;
  if (time_to_slash_ms.has_value()) {
    std::snprintf(buf, sizeof buf, "\"time_to_slash_ms\": %llu, ",
                  static_cast<unsigned long long>(*time_to_slash_ms));
    out += buf;
  } else {
    out += "\"time_to_slash_ms\": null, ";
  }
  const auto u64_array = [&out](const char* name,
                                const std::vector<std::uint64_t>& v) {
    out += std::string("\"") + name + "\": [";
    for (std::size_t i = 0; i < v.size(); ++i) {
      char b[32];
      std::snprintf(b, sizeof b, "%s%llu", i > 0 ? ", " : "",
                    static_cast<unsigned long long>(v[i]));
      out += b;
    }
    out += "], ";
  };
  u64_array("honest_sent_by_shard", honest_sent_by_shard);
  u64_array("honest_delivered_by_shard", honest_delivered_by_shard);
  u64_array("spam_delivered_by_shard", spam_delivered_by_shard);
  out += "\"honest_delivery_by_shard\": [";
  for (std::size_t i = 0; i < honest_delivery_by_shard.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%.4f", i > 0 ? ", " : "",
                  honest_delivery_by_shard[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "], \"min_non_attacked_delivery\": %.4f, "
                "\"spam_on_non_attacked_shards\": %llu, ",
                min_non_attacked_delivery,
                static_cast<unsigned long long>(
                    spam_on_non_attacked_shards));
  out += buf;
  char pbuf[512];
  std::snprintf(pbuf, sizeof pbuf,
                "\"propagation_trees\": %zu, "
                "\"propagation_complete\": %zu, "
                "\"propagation_incomplete\": %zu, "
                "\"propagation_rejected\": %zu, "
                "\"propagation_adversary\": %zu, "
                "\"complete_tree_fraction\": %.4f, "
                "\"propagation_p95_ms\": %.4f, "
                "\"propagation_redundancy\": %.4f, "
                "\"propagation_reachability\": %.4f, ",
                propagation_trees, propagation_complete,
                propagation_incomplete, propagation_rejected,
                propagation_adversary, complete_tree_fraction,
                propagation_p95_ms, propagation_redundancy,
                propagation_reachability);
  out += pbuf;
  out += "\"propagation\": " +
         (propagation_json.empty() ? std::string("{}") : propagation_json) +
         "}";
  return out;
}

ShardFloodOutcome run_shard_flood_campaign(const ShardFloodConfig& config) {
  rln::HarnessConfig hcfg = config.harness;
  const std::uint16_t num_shards = hcfg.node.shards.num_shards;
  const shard::ShardId attacked = config.attacked_shard;
  WAKU_EXPECTS(attacked < num_shards);
  // Round-robin partition: slot i hosts exactly shard i mod S. The
  // flooder is the first slot homed on the attacked shard.
  hcfg.shard_assignment = [num_shards](std::size_t i) {
    return std::vector<shard::ShardId>{
        static_cast<shard::ShardId>(i % num_shards)};
  };
  rln::RlnHarness h(hcfg);
  const std::size_t flooder_slot = attacked;  // slot id == home shard id

  // The random degree-k graph does not know about shards; gossipsub meshes
  // only form between neighbors subscribed to the same topic, so stitch
  // each shard's hosts into a ring with one chord — guaranteed intra-shard
  // connectivity at any shard count (connect() is idempotent).
  for (std::uint16_t s = 0; s < num_shards; ++s) {
    std::vector<std::size_t> hosts;
    for (std::size_t i = s; i < h.size(); i += num_shards) hosts.push_back(i);
    for (std::size_t k = 0; k + 1 < hosts.size(); ++k) {
      h.network().connect(h.node(hosts[k]).node_id(),
                          h.node(hosts[k + 1]).node_id());
    }
    if (hosts.size() > 2) {
      h.network().connect(h.node(hosts.back()).node_id(),
                          h.node(hosts.front()).node_id());
      h.network().connect(h.node(hosts[0]).node_id(),
                          h.node(hosts[hosts.size() / 2]).node_id());
    }
  }

  MetricsRegistry metrics;
  HarnessProbe probe(h, metrics);
  h.register_all();

  const shard::ShardMap map(hcfg.node.shards);
  // Per-shard honest target topics, computed once.
  std::vector<std::string> shard_topic(num_shards);
  for (std::uint16_t s = 0; s < num_shards; ++s) {
    shard_topic[s] = shard::content_topic_for_shard(map, s);
  }

  ShardFloodOutcome out;
  out.num_shards = num_shards;
  out.attacked_shard = attacked;
  out.honest_sent_by_shard.assign(num_shards, 0);

  const std::uint64_t flooder_index =
      h.node(flooder_slot).group().own_index().value();

  Rng traffic_rng(hcfg.seed ^ 0x5A4DF100DULL);
  RateLimitFlooder flooder(flooder_slot, config.flood_burst_per_epoch,
                           shard_topic[attacked]);
  AdversaryContext ctx{h, metrics, traffic_rng, config.tick_ms};

  // Cross-node propagation assembly: harvest every node's trace rings at
  // each epoch turn (idempotent ingest — a ring re-collected later only
  // enriches its trees) and once more after the drain.
  const bool tracing = hcfg.node.obs.trace.sample_every != 0;
  obs::PropagationAssembler assembler;
  if (tracing) {
    // The flooder injects spam below the traced publish path (no honest
    // telemetry from an attacker); anchor its trees as attack evidence
    // so they feed forensics instead of the honest-reconstruction rate.
    assembler.mark_adversary(h.node(flooder_slot).node_id());
    for (std::uint16_t s = 0; s < num_shards; ++s) {
      std::size_t hosts = 0;
      for (std::size_t i = s; i < h.size(); i += num_shards) ++hosts;
      assembler.set_subscribers(s, hosts);
    }
  }
  const auto collect_rings = [&] {
    if (!tracing) return;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (!h.alive(i)) continue;
      assembler.ingest(h.node(i).node_id(), h.node(i).trace_dump());
      assembler.ingest_flight(h.node(i).node_id(),
                              h.node(i).flight_recorder().events());
    }
  };
  std::uint64_t last_collect_epoch = ~std::uint64_t{0};

  const double per_tick_p =
      config.honest_rate_per_epoch * static_cast<double>(config.tick_ms) /
      static_cast<double>(hcfg.node.validator.epoch.epoch_length_ms);
  std::uint64_t honest_seq = 0;
  const auto honest_tick = [&] {
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (i == flooder_slot || !h.alive(i)) continue;
      if (!traffic_rng.chance(per_tick_p)) continue;
      const auto home = static_cast<shard::ShardId>(i % num_shards);
      const auto status = h.node(i).try_publish(
          to_bytes(std::string(kHonestTag) + "n" + std::to_string(i) + "#" +
                   std::to_string(honest_seq)),
          shard_topic[home]);
      if (status == rln::WakuRlnRelayNode::PublishStatus::kOk) {
        ++honest_seq;
        ++out.honest_sent_by_shard[home];
        metrics.counter("honest.sent").inc();
      }
    }
  };
  const auto run_ticks = [&](net::TimeMs duration, bool attack) {
    const net::TimeMs end = h.sim().now() + duration;
    while (h.sim().now() < end) {
      const net::TimeMs step =
          std::min<net::TimeMs>(config.tick_ms, end - h.sim().now());
      h.run_ms(step);
      honest_tick();
      if (attack) flooder.on_tick(ctx);
      const std::uint64_t epoch =
          hcfg.node.validator.epoch.epoch_at(h.sim().now());
      if (tracing && epoch != last_collect_epoch) {
        last_collect_epoch = epoch;
        collect_rings();
      }
    }
  };

  run_ticks(config.warmup_ms, false);
  probe.mark_attack_start();
  run_ticks(config.attack_ms, true);
  // Drain: let in-flight publishes, validation windows, and the slash
  // commit-reveal settle before judging containment.
  h.run_ms(config.drain_ms);

  out.spam_sent = flooder.spam_sent();

  // Slash attribution: the flooder's member index on the chain event log.
  for (const HarnessProbe::SlashEvent& slash : probe.slashes()) {
    if (slash.index != flooder_index) continue;
    out.attacker_slashed = true;
    if (probe.attack_start_ms().has_value()) {
      out.time_to_slash_ms = slash.at_ms - *probe.attack_start_ms();
    }
    break;
  }

  // Per-shard delivery accounting. Honest hosts of shard s (flooder
  // excluded) are the ideal receiver set for that shard's traffic — the
  // publisher's local delivery included.
  out.honest_delivered_by_shard.assign(num_shards, 0);
  out.spam_delivered_by_shard.assign(num_shards, 0);
  out.honest_delivery_by_shard.assign(num_shards, 0.0);
  out.min_non_attacked_delivery = 1.0;
  for (std::uint16_t s = 0; s < num_shards; ++s) {
    std::uint64_t hosts = 0;
    for (std::size_t i = s; i < h.size(); i += num_shards) {
      if (i == flooder_slot || !h.alive(i)) continue;
      ++hosts;
      out.honest_delivered_by_shard[s] +=
          probe.node_shard_honest_delivered(i, s);
      out.spam_delivered_by_shard[s] += probe.node_shard_spam_delivered(i, s);
    }
    const std::uint64_t ideal = out.honest_sent_by_shard[s] * hosts;
    out.honest_delivery_by_shard[s] =
        ideal == 0 ? 1.0
                   : static_cast<double>(out.honest_delivered_by_shard[s]) /
                         static_cast<double>(ideal);
    if (s != attacked) {
      out.min_non_attacked_delivery = std::min(
          out.min_non_attacked_delivery, out.honest_delivery_by_shard[s]);
      out.spam_on_non_attacked_shards += out.spam_delivered_by_shard[s];
    }
  }

  if (tracing) {
    collect_rings();  // post-drain: traces finished during the drain
    const obs::PropagationSummary ps = assembler.summary();
    out.propagation_trees = ps.trees;
    out.propagation_complete = ps.complete_trees;
    out.propagation_incomplete = ps.incomplete_trees;
    out.propagation_rejected = ps.rejected_trees;
    out.propagation_adversary = ps.adversary_trees;
    const std::size_t honest_trees =
        ps.trees - ps.rejected_trees - ps.adversary_trees;
    out.complete_tree_fraction =
        honest_trees == 0 ? 1.0
                          : static_cast<double>(ps.complete_trees) /
                                static_cast<double>(honest_trees);
    out.propagation_p95_ms = static_cast<double>(ps.p95_ns) / 1e6;
    out.propagation_redundancy = ps.redundancy_ratio;
    out.propagation_reachability = ps.reachability;
    // Compact rollup only (no per-tree detail): campaign outcomes are
    // committed as bench baselines, where a 256-node trees_detail array
    // would be megabytes of noise.
    // Compact rollup only (no per-tree detail): campaign outcomes are
    // committed as bench baselines, where a 256-node trees_detail array
    // would be megabytes of noise.
    out.propagation_json = ps.to_json();
    out.chrome_trace_json = assembler.chrome_trace_json();
  }
  return out;
}

// -- Live reshard campaign ---------------------------------------------------

std::string LiveReshardOutcome::to_json() const {
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"from_shards\": %u, \"to_shards\": %u, "
                "\"all_nodes_converged\": %s, ",
                from_shards, to_shards,
                all_nodes_converged ? "true" : "false");
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"honest_sent\": %llu, \"honest_delivered\": %llu, "
                "\"honest_ideal\": %llu, \"honest_delivery\": %.4f, ",
                static_cast<unsigned long long>(honest_sent),
                static_cast<unsigned long long>(honest_delivered),
                static_cast<unsigned long long>(honest_ideal),
                honest_delivery);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"spam_pairs_sent\": %llu, \"spam_delivered\": %llu, "
                "\"quota_double_deliveries\": %llu, "
                "\"attacker_slashed\": %s, ",
                static_cast<unsigned long long>(spam_pairs_sent),
                static_cast<unsigned long long>(spam_delivered),
                static_cast<unsigned long long>(quota_double_deliveries),
                attacker_slashed ? "true" : "false");
  out += buf;
  if (time_to_slash_ms.has_value()) {
    std::snprintf(buf, sizeof buf, "\"time_to_slash_ms\": %llu, ",
                  static_cast<unsigned long long>(*time_to_slash_ms));
  } else {
    std::snprintf(buf, sizeof buf, "\"time_to_slash_ms\": null, ");
  }
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "\"cutover_duration_ms\": %llu, \"steady_msgs_per_sec\": %.2f, "
      "\"cutover_msgs_per_sec\": %.2f, \"post_msgs_per_sec\": %.2f, "
      "\"throughput_dip\": %.4f, \"overlap_messages_in_flight\": %llu, "
      "\"rebalance_was_recommended\": %s}",
      static_cast<unsigned long long>(cutover_duration_ms),
      steady_msgs_per_sec, cutover_msgs_per_sec, post_msgs_per_sec,
      throughput_dip,
      static_cast<unsigned long long>(overlap_messages_in_flight),
      rebalance_was_recommended ? "true" : "false");
  out += buf;
  return out;
}

LiveReshardOutcome run_live_reshard_campaign(const LiveReshardConfig& config) {
  rln::HarnessConfig hcfg = config.harness;
  const std::uint16_t from = hcfg.node.shards.num_shards;
  const std::uint16_t to = config.target_shards;
  WAKU_EXPECTS(from >= 1 && to > from && to % from == 0);
  // Round-robin on BOTH layouts: slot i hosts old shard i mod F and will
  // host new shard i mod T — a refinement pair by construction
  // ((i mod T) mod F == i mod F), which is what lets every node enforce
  // the shared cutover quota for the topics it hosts.
  hcfg.shard_assignment = [from](std::size_t i) {
    return std::vector<shard::ShardId>{
        static_cast<shard::ShardId>(i % from)};
  };
  rln::RlnHarness h(hcfg);
  const std::size_t n = h.size();
  const std::size_t attack_slot = config.flood_pairs_per_epoch > 0 ? 1 : n;

  // Intra-shard ring stitching for both generations' host groups (the
  // random graph does not know about shards; connect() is idempotent).
  const auto stitch = [&h, n](std::uint16_t groups) {
    for (std::uint16_t s = 0; s < groups; ++s) {
      std::vector<std::size_t> hosts;
      for (std::size_t i = s; i < n; i += groups) hosts.push_back(i);
      for (std::size_t k = 0; k + 1 < hosts.size(); ++k) {
        h.network().connect(h.node(hosts[k]).node_id(),
                            h.node(hosts[k + 1]).node_id());
      }
      if (hosts.size() > 2) {
        h.network().connect(h.node(hosts.back()).node_id(),
                            h.node(hosts.front()).node_id());
      }
    }
  };
  stitch(from);
  stitch(to);

  // -- Accounting (self-contained: the campaign needs per-message epoch
  // classification the shared probe does not track).
  std::vector<std::uint64_t> honest_delivered(n, 0);
  std::uint64_t spam_delivered = 0;
  std::uint64_t quota_double_deliveries = 0;
  // Per (node, epoch): which halves of an attacker pair arrived
  // (bit 1 = old-generation mesh, bit 2 = new). Both bits on one node in
  // one epoch = the migration doubled a quota.
  std::vector<std::map<std::uint64_t, std::uint8_t>> pair_seen(n);
  h.set_node_hook([&](std::size_t i, rln::WakuRlnRelayNode& node) {
    node.set_message_handler([&, i](const WakuMessage& msg) {
      if (i == attack_slot) return;  // honest-side accounting only
      const std::string payload(msg.payload.begin(), msg.payload.end());
      if (payload.starts_with(kHonestTag)) {
        ++honest_delivered[i];
        return;
      }
      if (!payload.starts_with(kSpamTag)) return;
      ++spam_delivered;
      // Attacker payload: "spam|p<epoch>|old|..." / "...|new|...".
      const std::size_t epoch_at = kSpamTag.size() + 1;
      std::uint64_t epoch = 0;
      std::size_t pos = epoch_at;
      while (pos < payload.size() && payload[pos] >= '0' &&
             payload[pos] <= '9') {
        epoch = epoch * 10 + static_cast<std::uint64_t>(payload[pos] - '0');
        ++pos;
      }
      const bool old_half = payload.compare(pos, 5, "|old|") == 0;
      const std::uint8_t bit = old_half ? 1 : 2;
      std::uint8_t& mask = pair_seen[i][epoch];
      if (mask != 0 && (mask & bit) == 0) ++quota_double_deliveries;
      mask |= bit;
    });
  });

  struct SlashEvent {
    std::uint64_t index;
    net::TimeMs at_ms;
  };
  std::vector<SlashEvent> slashes;
  const std::uint64_t chain_sub =
      h.chain().subscribe_events([&](const chain::Event& ev) {
        if (ev.name == "MemberSlashed") {
          slashes.push_back(SlashEvent{ev.topics[0].limb[0], h.sim().now()});
        }
      });

  h.register_all();
  const std::uint64_t attacker_index =
      attack_slot < n ? h.node(attack_slot).group().own_index().value() : 0;

  const shard::ShardMap old_map(hcfg.node.shards);
  const shard::ShardMap new_map =
      old_map.split(static_cast<std::uint16_t>(to / from));
  std::vector<std::string> topic_old(from);
  for (std::uint16_t s = 0; s < from; ++s) {
    topic_old[s] = shard::content_topic_for_shard(old_map, s);
  }
  std::vector<std::string> topic_new(to);
  for (std::uint16_t s = 0; s < to; ++s) {
    topic_new[s] = shard::content_topic_for_shard(new_map, s);
  }

  // Honest host counts per mesh (attacker excluded) — the ideal receiver
  // sets delivery is judged against.
  const auto honest_hosts = [&](std::uint16_t groups, shard::ShardId s) {
    std::uint64_t hosts = 0;
    for (std::size_t i = s; i < n; i += groups) {
      if (i != attack_slot) ++hosts;
    }
    return hosts;
  };

  LiveReshardOutcome out;
  out.from_shards = from;
  out.to_shards = to;

  Rng traffic_rng(hcfg.seed ^ 0x11FE5A4DULL);
  const double per_tick_p =
      config.honest_rate_per_epoch * static_cast<double>(config.tick_ms) /
      static_cast<double>(hcfg.node.validator.epoch.epoch_length_ms);
  std::uint64_t honest_seq = 0;

  // The overlap attacker: same-epoch valid-proof pairs, one half forced
  // onto each generation's mesh of one topic the attacker hosts under
  // both layouts (same epoch -> same nullifier; the shared domain log
  // must fold the pair into ONE signal and slash).
  std::string attack_topic;
  if (attack_slot < n) {
    const auto old_home = static_cast<shard::ShardId>(attack_slot % from);
    const auto new_home = static_cast<shard::ShardId>(attack_slot % to);
    for (std::uint64_t probe = 0;; ++probe) {
      std::string t =
          "/waku/2/reshard-attack-" + std::to_string(probe) + "/proto";
      if (old_map.shard_of(t) == old_home && new_map.shard_of(t) == new_home) {
        attack_topic = std::move(t);
        break;
      }
    }
  }
  std::uint64_t attack_epoch = ~std::uint64_t{0};
  std::uint64_t pairs_this_epoch = 0;
  const auto attacker_tick = [&] {
    if (attack_slot >= n || !h.alive(attack_slot) ||
        !h.node(attack_slot).is_registered()) {
      return;  // slashed (or disabled): the flood is over
    }
    const std::uint64_t epoch = h.node(attack_slot).current_epoch();
    if (epoch != attack_epoch) {
      attack_epoch = epoch;
      pairs_this_epoch = 0;
    }
    if (pairs_this_epoch >= config.flood_pairs_per_epoch) return;
    ++pairs_this_epoch;
    ++out.spam_pairs_sent;
    const std::string base = std::string(kSpamTag) + "p" +
                             std::to_string(epoch) + "|";
    const std::string suffix =
        "|" + std::to_string(out.spam_pairs_sent);
    h.node(attack_slot).force_publish_generation(
        to_bytes(base + "old" + suffix), attack_topic,
        /*use_next_generation=*/false);
    h.node(attack_slot).force_publish_generation(
        to_bytes(base + "new" + suffix), attack_topic,
        /*use_next_generation=*/true);
  };

  const auto honest_tick = [&](bool new_generation_topics) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == attack_slot || !h.alive(i)) continue;
      if (!traffic_rng.chance(per_tick_p)) continue;
      const auto home_old = static_cast<shard::ShardId>(i % from);
      const auto home_new = static_cast<shard::ShardId>(i % to);
      const std::string& topic =
          new_generation_topics ? topic_new[home_new] : topic_old[home_old];
      const auto status = h.node(i).try_publish(
          to_bytes(std::string(kHonestTag) + "n" + std::to_string(i) + "#" +
                   std::to_string(honest_seq)),
          topic);
      if (status == rln::WakuRlnRelayNode::PublishStatus::kOk) {
        ++honest_seq;
        ++out.honest_sent;
        out.honest_ideal += new_generation_topics
                                ? honest_hosts(to, home_new)
                                : honest_hosts(from, home_old);
      }
    }
  };

  const auto total_honest_delivered = [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) sum += honest_delivered[i];
    return sum;
  };
  // Segment throughput in fully-delivered messages/sec: raw deliveries
  // are fan-out dependent (a T-shard mesh has fewer hosts per message
  // than an F-shard one), so normalize by the segment's ideal receiver
  // count — sent × (delivered/ideal) is "messages that fully arrived".
  struct SegmentMark {
    std::uint64_t sent, ideal, delivered;
  };
  const auto mark = [&] {
    return SegmentMark{out.honest_sent, out.honest_ideal,
                       total_honest_delivered()};
  };
  const auto segment_msgs_per_sec = [](const SegmentMark& a,
                                       const SegmentMark& b,
                                       net::TimeMs duration) {
    const std::uint64_t ideal = b.ideal - a.ideal;
    if (ideal == 0 || duration == 0) return 0.0;
    const double completion =
        static_cast<double>(b.delivered - a.delivered) /
        static_cast<double>(ideal);
    return static_cast<double>(b.sent - a.sent) * completion * 1000.0 /
           static_cast<double>(duration);
  };

  const auto run_ticks = [&](net::TimeMs duration, bool new_topics,
                             bool attack) {
    const net::TimeMs end = h.sim().now() + duration;
    while (h.sim().now() < end) {
      const net::TimeMs step =
          std::min<net::TimeMs>(config.tick_ms, end - h.sim().now());
      h.run_ms(step);
      honest_tick(new_topics);
      if (attack) attacker_tick();
    }
  };

  // -- Steady state (throughput baseline + the "reshard now" signal).
  const SegmentMark warmup_start = mark();
  run_ticks(config.warmup_ms, false, false);
  const SegmentMark warmup_end = mark();
  out.steady_msgs_per_sec =
      segment_msgs_per_sec(warmup_start, warmup_end, config.warmup_ms);
  {
    // The operator-side signal: feed the fleet's per-shard accepted
    // totals into a load tracker whose per-shard budget the current
    // layout exceeds — exactly the situation that should recommend this
    // campaign's reshard.
    shard::ShardLoadTracker::Config tcfg;
    tcfg.window_ms = config.warmup_ms + 1;
    tcfg.overload_msgs_per_sec =
        std::max(0.001, out.steady_msgs_per_sec / (2.0 * from));
    shard::ShardLoadTracker tracker(tcfg);
    for (std::uint16_t s = 0; s < from; ++s) {
      std::uint64_t accepted = 0;
      std::size_t log_entries = 0;
      for (std::size_t i = s; i < n; i += from) {
        if (!h.alive(i)) continue;
        accepted += h.node(i).validator().pipeline(s).stats().accepted;
        log_entries += h.node(i).validator().pipeline(s).log().entry_count();
      }
      tracker.record(s, 0, log_entries, 0);
      tracker.record(s, accepted, log_entries, config.warmup_ms);
    }
    const shard::RebalanceRecommendation rec =
        tracker.recommend(old_map, topic_old);
    out.rebalance_was_recommended =
        rec.reshard_recommended && rec.target_shards > from;
  }

  // -- Staged cutover, fleet-wide lockstep.
  const net::TimeMs cutover_start = h.sim().now();
  for (std::size_t i = 0; i < n; ++i) {
    h.node(i).begin_reshard(to, {static_cast<shard::ShardId>(i % to)});
  }
  run_ticks(config.announce_ms, false, false);
  for (std::size_t i = 0; i < n; ++i) h.node(i).advance_reshard();  // overlap
  const net::TimeMs attack_start = h.sim().now();
  const std::uint64_t pre_overlap_delivered = total_honest_delivered();
  run_ticks(config.overlap_ms, false, config.flood_pairs_per_epoch > 0);
  out.overlap_messages_in_flight =
      total_honest_delivered() - pre_overlap_delivered;
  for (std::size_t i = 0; i < n; ++i) h.node(i).advance_reshard();  // drain
  run_ticks(config.drain_phase_ms, true, false);
  for (std::size_t i = 0; i < n; ++i) h.node(i).advance_reshard();  // drop-old
  const net::TimeMs cutover_end = h.sim().now();
  out.cutover_duration_ms = cutover_end - cutover_start;
  out.cutover_msgs_per_sec =
      segment_msgs_per_sec(warmup_end, mark(), cutover_end - cutover_start);

  // -- Post-cutover steady state + final quiesce. The first epoch after
  // drop-old is blanked by the conservative quota merge (by design);
  // measure the recovered rate from the epoch after it.
  run_ticks(hcfg.node.validator.epoch.epoch_length_ms, true, false);
  const SegmentMark settle_start = mark();
  run_ticks(config.settle_ms, true, false);
  out.post_msgs_per_sec =
      segment_msgs_per_sec(settle_start, mark(), config.settle_ms);
  h.run_ms(config.quiesce_ms);

  out.throughput_dip =
      out.steady_msgs_per_sec > 0
          ? std::max(0.0, 1.0 - out.cutover_msgs_per_sec /
                                    out.steady_msgs_per_sec)
          : 0.0;
  out.honest_delivered = total_honest_delivered();
  out.honest_delivery =
      out.honest_ideal == 0
          ? 1.0
          : static_cast<double>(out.honest_delivered) /
                static_cast<double>(out.honest_ideal);
  out.spam_delivered = spam_delivered;
  out.quota_double_deliveries = quota_double_deliveries;

  out.all_nodes_converged = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!h.alive(i)) continue;
    const shard::ShardMap& map = h.node(i).shard_map();
    if (map.num_shards() != to ||
        map.generation() != old_map.generation() + 1 ||
        h.node(i).reshard_phase() != shard::ReshardPhase::kStable) {
      out.all_nodes_converged = false;
    }
  }

  for (const SlashEvent& slash : slashes) {
    if (attack_slot < n && slash.index == attacker_index) {
      out.attacker_slashed = true;
      out.time_to_slash_ms = slash.at_ms - attack_start;
      break;
    }
  }
  h.chain().unsubscribe_events(chain_sub);
  h.set_node_hook(nullptr);
  return out;
}

// -- Operator hotspot campaign ------------------------------------------------

std::string OperatorHotspotConfig::to_json() const {
  char buf[448];
  std::snprintf(
      buf, sizeof buf,
      "{\"nodes\": %llu, \"target_shards\": %u, \"max_epochs\": %llu, "
      "\"honest_rate_per_epoch\": %.2f, \"flood_pairs_per_epoch\": %llu, "
      "\"overload_msgs_per_sec\": %.2f, \"cooldown_epochs\": %llu, "
      "\"trip_epochs\": %llu, \"phase_dwell_epochs\": %llu, \"seed\": %llu}",
      static_cast<unsigned long long>(harness.num_nodes), target_shards,
      static_cast<unsigned long long>(max_epochs), honest_rate_per_epoch,
      static_cast<unsigned long long>(flood_pairs_per_epoch),
      overload_msgs_per_sec, static_cast<unsigned long long>(cooldown_epochs),
      static_cast<unsigned long long>(trip_epochs),
      static_cast<unsigned long long>(phase_dwell_epochs),
      static_cast<unsigned long long>(harness.seed));
  return buf;
}

std::string OperatorHotspotOutcome::to_json() const {
  std::string out = "{";
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "\"from_shards\": %u, \"to_shards\": %u, "
                "\"operator_triggered\": %s, \"trigger_epoch\": %llu, "
                "\"converged\": %s, \"converged_epoch\": %llu, "
                "\"epochs_to_converge\": %llu, \"operator_decisions\": %llu, ",
                from_shards, to_shards, operator_triggered ? "true" : "false",
                static_cast<unsigned long long>(trigger_epoch),
                converged ? "true" : "false",
                static_cast<unsigned long long>(converged_epoch),
                static_cast<unsigned long long>(epochs_to_converge),
                static_cast<unsigned long long>(operator_decisions));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"honest_sent\": %llu, \"honest_delivered\": %llu, "
                "\"honest_ideal\": %llu, \"honest_delivery\": %.4f, ",
                static_cast<unsigned long long>(honest_sent),
                static_cast<unsigned long long>(honest_delivered),
                static_cast<unsigned long long>(honest_ideal),
                honest_delivery);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "\"spam_pairs_sent\": %llu, \"spam_delivered\": %llu, "
                "\"quota_double_deliveries\": %llu, "
                "\"attacker_slashed\": %s, ",
                static_cast<unsigned long long>(spam_pairs_sent),
                static_cast<unsigned long long>(spam_delivered),
                static_cast<unsigned long long>(quota_double_deliveries),
                attacker_slashed ? "true" : "false");
  out += buf;
  if (time_to_slash_ms.has_value()) {
    std::snprintf(buf, sizeof buf, "\"time_to_slash_ms\": %llu, ",
                  static_cast<unsigned long long>(*time_to_slash_ms));
  } else {
    std::snprintf(buf, sizeof buf, "\"time_to_slash_ms\": null, ");
  }
  out += buf;
  std::snprintf(buf, sizeof buf, "\"anomalies_fired\": %llu, ",
                static_cast<unsigned long long>(anomalies_fired));
  out += buf;
  out += "\"fleet_timeline\": " +
         (fleet_timeline_json.empty() ? std::string("[]")
                                      : fleet_timeline_json) +
         ", ";
  out += "\"postmortem\": " +
         (postmortem_json.empty() ? std::string("null") : postmortem_json) +
         "}";
  return out;
}

OperatorHotspotOutcome run_operator_hotspot_campaign(
    const OperatorHotspotConfig& config) {
  rln::HarnessConfig hcfg = config.harness;
  const std::uint16_t from = hcfg.node.shards.num_shards;
  const std::uint16_t to = config.target_shards;
  WAKU_EXPECTS(from >= 1 && to > from && to % from == 0);
  hcfg.shard_assignment = [from](std::size_t i) {
    return std::vector<shard::ShardId>{
        static_cast<shard::ShardId>(i % from)};
  };
  // The loop under test: every node watches its OWN tracker + anomaly
  // engine in upkeep and acts alone — the campaign never calls
  // begin_reshard/advance_reshard.
  hcfg.node.operator_loop.enabled = true;
  hcfg.node.operator_loop.cooldown_epochs = config.cooldown_epochs;
  hcfg.node.operator_loop.trip_epochs = config.trip_epochs;
  hcfg.node.operator_loop.phase_dwell_epochs = config.phase_dwell_epochs;
  hcfg.node.load_tracker.overload_msgs_per_sec = config.overload_msgs_per_sec;
  rln::RlnHarness h(hcfg);
  const std::size_t n = h.size();
  const std::size_t attack_slot = config.flood_pairs_per_epoch > 0 ? 1 : n;

  // Intra-shard ring stitching for both layouts' host groups (the random
  // graph does not know about shards; connect() is idempotent).
  const auto stitch = [&h, n](std::uint16_t groups) {
    for (std::uint16_t s = 0; s < groups; ++s) {
      std::vector<std::size_t> hosts;
      for (std::size_t i = s; i < n; i += groups) hosts.push_back(i);
      for (std::size_t k = 0; k + 1 < hosts.size(); ++k) {
        h.network().connect(h.node(hosts[k]).node_id(),
                            h.node(hosts[k + 1]).node_id());
      }
      if (hosts.size() > 2) {
        h.network().connect(h.node(hosts.back()).node_id(),
                            h.node(hosts.front()).node_id());
      }
    }
  };
  stitch(from);
  stitch(to);

  OperatorHotspotOutcome out;
  out.from_shards = from;

  // -- Accounting (same shape as the live-reshard campaign).
  std::vector<std::uint64_t> honest_delivered(n, 0);
  std::vector<std::uint64_t> spam_delivered_at(n, 0);
  std::uint64_t quota_double_deliveries = 0;
  std::vector<std::map<std::uint64_t, std::uint8_t>> pair_seen(n);
  h.set_node_hook([&](std::size_t i, rln::WakuRlnRelayNode& node) {
    // Per-slot chooser: spread the new-generation family round-robin
    // (slot i hosts new shard i mod target). Installed via the hook so a
    // restarted node re-learns it before its operator resumes.
    node.set_operator_subscribe_chooser([i](std::uint16_t target) {
      return std::vector<shard::ShardId>{
          static_cast<shard::ShardId>(i % target)};
    });
    node.set_message_handler([&, i](const WakuMessage& msg) {
      if (i == attack_slot) return;  // honest-side accounting only
      const std::string payload(msg.payload.begin(), msg.payload.end());
      if (payload.starts_with(kHonestTag)) {
        ++honest_delivered[i];
        return;
      }
      if (!payload.starts_with(kSpamTag)) return;
      ++spam_delivered_at[i];
      const std::size_t epoch_at = kSpamTag.size() + 1;
      std::uint64_t epoch = 0;
      std::size_t pos = epoch_at;
      while (pos < payload.size() && payload[pos] >= '0' &&
             payload[pos] <= '9') {
        epoch = epoch * 10 + static_cast<std::uint64_t>(payload[pos] - '0');
        ++pos;
      }
      const bool old_half = payload.compare(pos, 5, "|old|") == 0;
      const std::uint8_t bit = old_half ? 1 : 2;
      std::uint8_t& mask = pair_seen[i][epoch];
      if (mask != 0 && (mask & bit) == 0) ++quota_double_deliveries;
      mask |= bit;
    });
  });

  struct SlashEvent {
    std::uint64_t index;
    net::TimeMs at_ms;
  };
  std::vector<SlashEvent> slashes;
  const std::uint64_t chain_sub =
      h.chain().subscribe_events([&](const chain::Event& ev) {
        if (ev.name == "MemberSlashed") {
          slashes.push_back(SlashEvent{ev.topics[0].limb[0], h.sim().now()});
        }
      });

  h.register_all();
  const std::uint64_t attacker_index =
      attack_slot < n ? h.node(attack_slot).group().own_index().value() : 0;

  const shard::ShardMap old_map(hcfg.node.shards);
  const std::uint32_t gen0 = old_map.generation();
  const shard::ShardMap new_map =
      old_map.split(static_cast<std::uint16_t>(to / from));

  // Pre-picked per-slot topics: slot i's topic is homed on old shard
  // i mod F and new shard i mod T, so it stays publishable by the same
  // node through the whole cutover — only its mesh moves.
  std::vector<std::string> topic_for(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto old_home = static_cast<shard::ShardId>(i % from);
    const auto new_home = static_cast<shard::ShardId>(i % to);
    for (std::uint64_t probe = 0;; ++probe) {
      std::string t = "/waku/2/hotspot-" + std::to_string(i) + "-" +
                      std::to_string(probe) + "/proto";
      if (old_map.shard_of(t) == old_home && new_map.shard_of(t) == new_home) {
        topic_for[i] = std::move(t);
        break;
      }
    }
  }

  const auto honest_hosts = [&](std::uint16_t groups, shard::ShardId s) {
    std::uint64_t hosts = 0;
    for (std::size_t i = s; i < n; i += groups) {
      if (i != attack_slot) ++hosts;
    }
    return hosts;
  };

  Rng traffic_rng(hcfg.seed ^ 0x0B5E7A70ULL);
  const std::uint64_t epoch_ms = hcfg.node.validator.epoch.epoch_length_ms;
  const double per_tick_p = config.honest_rate_per_epoch *
                            static_cast<double>(config.tick_ms) /
                            static_cast<double>(epoch_ms);
  std::uint64_t honest_seq = 0;
  const auto honest_tick = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == attack_slot || !h.alive(i)) continue;
      if (!traffic_rng.chance(per_tick_p)) continue;
      rln::WakuRlnRelayNode& node = h.node(i);
      // The ideal receiver set follows the PUBLISHER's routing: old mesh
      // (every host of old home) until this node's drain, new mesh (the
      // new home's hosts) from drain on.
      const bool new_routing =
          node.shard_map().generation() != gen0 ||
          node.reshard_phase() == shard::ReshardPhase::kDrain;
      const auto status = node.try_publish(
          to_bytes(std::string(kHonestTag) + "n" + std::to_string(i) + "#" +
                   std::to_string(honest_seq)),
          topic_for[i]);
      if (status != rln::WakuRlnRelayNode::PublishStatus::kOk) continue;
      ++honest_seq;
      ++out.honest_sent;
      out.honest_ideal +=
          new_routing
              ? honest_hosts(to, static_cast<shard::ShardId>(i % to))
              : honest_hosts(from, static_cast<shard::ShardId>(i % from));
    }
  };

  // The overlap attacker: cross-generation same-epoch pairs on its own
  // topic, but ONLY while its own node is in the dual-generation window
  // (overlap/drain) — which it reaches when ITS operator loop fires, not
  // on any driver schedule.
  std::uint64_t attack_epoch = ~std::uint64_t{0};
  std::uint64_t pairs_this_epoch = 0;
  std::optional<net::TimeMs> first_pair_ms;
  const auto attacker_tick = [&] {
    if (attack_slot >= n || !h.alive(attack_slot) ||
        !h.node(attack_slot).is_registered()) {
      return;  // disabled, or already slashed
    }
    const shard::ReshardPhase phase = h.node(attack_slot).reshard_phase();
    if (phase != shard::ReshardPhase::kOverlap &&
        phase != shard::ReshardPhase::kDrain) {
      return;
    }
    const std::uint64_t epoch = h.node(attack_slot).current_epoch();
    if (epoch != attack_epoch) {
      attack_epoch = epoch;
      pairs_this_epoch = 0;
    }
    if (pairs_this_epoch >= config.flood_pairs_per_epoch) return;
    ++pairs_this_epoch;
    ++out.spam_pairs_sent;
    if (!first_pair_ms.has_value()) first_pair_ms = h.sim().now();
    const std::string base =
        std::string(kSpamTag) + "p" + std::to_string(epoch) + "|";
    const std::string suffix = "|" + std::to_string(out.spam_pairs_sent);
    h.node(attack_slot).force_publish_generation(
        to_bytes(base + "old" + suffix), topic_for[attack_slot],
        /*use_next_generation=*/false);
    h.node(attack_slot).force_publish_generation(
        to_bytes(base + "new" + suffix), topic_for[attack_slot],
        /*use_next_generation=*/true);
  };

  // Fleet plane: scrape every honest node's health each epoch; a
  // fleet-side anomaly engine watches the rows the same way an operator
  // dashboard would.
  obs::FleetAggregator fleet;
  obs::AnomalyEngine fleet_anomaly;
  std::uint64_t last_epoch = ~std::uint64_t{0};
  const auto scrape = [&](std::uint64_t epoch) {
    bool first_honest = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == attack_slot || !h.alive(i)) continue;
      obs::NodeHealthSample s = h.node(i).health_sample();
      s.epoch = epoch;
      s.honest_delivered = honest_delivered[i];
      s.spam_delivered = spam_delivered_at[i];
      if (first_honest) {
        // Campaign-wide totals ride on one sample so the aggregator's
        // sums reproduce the outcome ratios. spam_delivered is summed
        // per RECEIVER, so the sent side carries the same weight: both
        // halves of every pair, fanned out to every honest node.
        s.honest_ideal = out.honest_ideal;
        s.spam_sent =
            out.spam_pairs_sent * 2 * static_cast<std::uint64_t>(n - 1);
        first_honest = false;
      }
      fleet.ingest(std::move(s));
    }
    if (const obs::FleetEpochSeries* row = fleet.close_epoch(epoch)) {
      (void)fleet_anomaly.evaluate(*row);
    }
  };

  const auto epoch_of = [&] {
    return hcfg.node.validator.epoch.epoch_at(h.sim().now());
  };
  const net::TimeMs t_end =
      h.sim().now() + config.max_epochs * epoch_ms;
  while (h.sim().now() < t_end) {
    h.run_ms(config.tick_ms);
    honest_tick();
    attacker_tick();
    const std::uint64_t epoch = epoch_of();
    if (epoch == last_epoch) continue;
    last_epoch = epoch;
    scrape(epoch);
    if (!out.operator_triggered) {
      std::uint64_t earliest = ~std::uint64_t{0};
      for (std::size_t i = 0; i < n; ++i) {
        if (!h.alive(i) || h.node(i).operator_decisions() == 0) continue;
        earliest = std::min(earliest, h.node(i).operator_last_action_epoch());
      }
      if (earliest != ~std::uint64_t{0}) {
        out.operator_triggered = true;
        out.trigger_epoch = earliest;
      }
    }
    bool all_converged = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!h.alive(i)) continue;
      const shard::ShardMap& map = h.node(i).shard_map();
      if (map.num_shards() != to || map.generation() != gen0 + 1 ||
          h.node(i).reshard_phase() != shard::ReshardPhase::kStable) {
        all_converged = false;
        break;
      }
    }
    if (all_converged) {
      out.converged = true;
      out.converged_epoch = epoch;
      break;
    }
  }

  // Quiesce: in-flight traffic + the attacker's slash commit-reveal.
  h.run_ms(config.quiesce_ms);
  if (epoch_of() != last_epoch) {
    last_epoch = epoch_of();
    scrape(last_epoch);
  }

  out.to_shards = h.node(0).shard_map().num_shards();
  out.epochs_to_converge =
      out.converged ? out.converged_epoch - out.trigger_epoch : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!h.alive(i)) continue;
    out.operator_decisions += h.node(i).operator_decisions();
    if (i != attack_slot) out.honest_delivered += honest_delivered[i];
    if (i != attack_slot) out.spam_delivered += spam_delivered_at[i];
  }
  out.honest_delivery =
      out.honest_ideal == 0
          ? 1.0
          : static_cast<double>(out.honest_delivered) /
                static_cast<double>(out.honest_ideal);
  out.quota_double_deliveries = quota_double_deliveries;
  for (const SlashEvent& slash : slashes) {
    if (attack_slot < n && slash.index == attacker_index) {
      out.attacker_slashed = true;
      if (first_pair_ms.has_value()) {
        out.time_to_slash_ms = slash.at_ms - *first_pair_ms;
      }
      break;
    }
  }
  out.anomalies_fired = fleet_anomaly.fired_total();
  out.fleet_timeline_json = fleet.timeline_json();
  out.postmortem_json =
      h.node(0).flight_recorder().postmortem_json("operator-hotspot-campaign");
  h.chain().unsubscribe_events(chain_sub);
  h.set_node_hook(nullptr);
  return out;
}

EclipseOutcome run_eclipse_campaign(const EclipseConfig& config) {
  rln::RlnHarness h(config.harness);
  h.register_all();
  h.run_ms(3'000);

  // The attacker holds a correctly signed checkpoint captured now — honest
  // at capture time, stale by bootstrap time. (Models a compromised or
  // merely frozen service replaying its last good artifact; the Schnorr
  // signature is genuine, which is exactly why staleness detection — not
  // the signature — must catch it.)
  const hash::schnorr::KeyPair key =
      hash::schnorr::keygen_from_seed(0xEC11B5E);
  rln::Checkpoint captured = h.node(0).make_checkpoint();
  captured.sign(key);
  StaleCheckpointService attacker(h.network(), captured.serialize());

  // Membership moves on while the attacker's artifact stands still.
  for (std::uint64_t i = 0; i < config.churn_members; ++i) {
    register_external_member(h, i);
  }
  h.run_ms(2 * config.harness.block_interval_ms + 1'000);

  // The victim: a light client whose honest bootstrap path sits behind
  // lossy links; the attacker's link is clean.
  rln::RlnFullServiceNode honest_service(h.network(), h.node(0));
  honest_service.set_checkpoint_signer(key);
  rln::RlnLightClient victim(h.network(), h.node(1).identity(),
                             *h.node(1).group().own_index(),
                             config.harness.node.validator.epoch,
                             config.harness.seed ^ 0xEC11ULL);
  victim.attach_chain(h.chain(), h.contract(), key.pk);
  victim.set_max_bootstrap_lag(config.max_bootstrap_lag);
  h.network().connect(victim.node_id(), honest_service.node_id());
  h.network().connect(victim.node_id(), attacker.node_id());
  net::LinkConfig lossy = config.harness.link;
  lossy.loss_rate = config.eclipse_loss;
  h.network().set_link_override(victim.node_id(), honest_service.node_id(),
                                lossy);

  EclipseOutcome out;
  // Starved attempt toward the honest service (the link eats it), then the
  // attacker's stale artifact. Outcomes are judged on client state, not
  // callbacks: responses lost to the eclipse leave stale entries in the
  // client's FIFO callback queue.
  victim.bootstrap(honest_service.node_id(), nullptr);
  h.run_ms(3'000);
  victim.bootstrap(attacker.node_id(), nullptr);
  h.run_ms(3'000);
  out.stale_served = attacker.served();
  out.stale_rejections = victim.stale_checkpoints_rejected();
  out.victim_detected_stale =
      !victim.bootstrapped() && out.stale_rejections > 0;

  // Recovery: the partition heals and the honest service gets through.
  h.network().clear_link_override(victim.node_id(),
                                  honest_service.node_id());
  victim.bootstrap(honest_service.node_id(), nullptr);
  h.run_ms(3'000);
  out.honest_bootstrap_after = victim.bootstrapped();
  return out;
}

}  // namespace waku::sim
