#include "sim/metrics.hpp"

#include <cstdio>

namespace waku::sim {

namespace {

void append_kv(std::string& out, const std::string& name, double value,
               bool first) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  if (!first) out += ", ";
  out += "\"" + name + "\": " + buf;
}

void append_kv(std::string& out, const std::string& name, std::uint64_t value,
               bool first) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  if (!first) out += ", ";
  out += "\"" + name + "\": " + buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++total_;
  sum_ += v;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

void MetricsRegistry::sample_epoch(std::uint64_t epoch) {
  const auto record = [this, epoch](const std::string& name, double value) {
    std::vector<SeriesPoint>& points = series_[name];
    if (!points.empty() && points.back().epoch == epoch) {
      points.back().value = value;  // same-epoch resample overwrites
    } else {
      points.push_back({epoch, value});
    }
  };
  for (const auto& [name, c] : counters_) {
    record(name, static_cast<double>(c.value()));
  }
  for (const auto& [name, g] : gauges_) record(name, g.value());
}

const std::vector<MetricsRegistry::SeriesPoint>& MetricsRegistry::series(
    const std::string& name) const {
  static const std::vector<SeriesPoint> kEmpty;
  const auto it = series_.find(name);
  return it != series_.end() ? it->second : kEmpty;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.value() : 0;
}

std::string MetricsRegistry::to_json() const {
  // Metric names are code-controlled identifiers (no quotes/backslashes),
  // so they are emitted without escaping.
  std::string out = "{\n\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    append_kv(out, name, c.value(), first);
    first = false;
  }
  out += "},\n\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    append_kv(out, name, g.value(), first);
    first = false;
  }
  out += "},\n\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s%.6g", i > 0 ? ", " : "",
                    h.bounds()[i]);
      out += buf;
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%s%llu", i > 0 ? ", " : "",
                    static_cast<unsigned long long>(h.counts()[i]));
      out += buf;
    }
    char tail[96];
    std::snprintf(tail, sizeof tail, "], \"total\": %llu, \"sum\": %.6g}",
                  static_cast<unsigned long long>(h.total()), h.sum());
    out += tail;
  }
  out += "},\n\"series\": {";
  first = true;
  for (const auto& [name, points] : series_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s{\"epoch\": %llu, \"value\": %.6g}",
                    i > 0 ? ", " : "",
                    static_cast<unsigned long long>(points[i].epoch),
                    points[i].value);
      out += buf;
    }
    out += "]";
  }
  out += "}\n}";
  return out;
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

// -- HarnessProbe ------------------------------------------------------------

HarnessProbe::HarnessProbe(rln::RlnHarness& harness, MetricsRegistry& registry)
    : harness_(harness),
      registry_(registry),
      shard_map_(harness.config().node.shards),
      num_shards_(harness.config().node.shards.num_shards),
      per_node_spam_(harness.size(), 0),
      per_node_honest_(harness.size(), 0),
      per_node_shard_spam_(harness.size() * num_shards_, 0),
      per_node_shard_honest_(harness.size() * num_shards_, 0) {
  // Delivery classification, per node and per shard (the shard the
  // delivered content topic maps to). Installed through the harness hook
  // so restart_node() re-attaches it to the fresh instance (a dead node's
  // handler dies with it).
  harness_.set_node_hook([this](std::size_t i, rln::WakuRlnRelayNode& node) {
    node.set_message_handler([this, i](const WakuMessage& msg) {
      const std::string_view payload(
          reinterpret_cast<const char*>(msg.payload.data()),
          msg.payload.size());
      const shard::ShardId shard = shard_map_.shard_of(msg.content_topic);
      const std::string shard_suffix =
          ".shard" + std::to_string(shard);
      if (payload.starts_with(kSpamTag)) {
        ++per_node_spam_[i];
        ++per_node_shard_spam_[i * num_shards_ + shard];
        ++spam_delivered_;
        registry_.counter("spam.delivered").inc();
        registry_.counter("spam.delivered" + shard_suffix).inc();
      } else if (payload.starts_with(kHonestTag)) {
        ++per_node_honest_[i];
        ++per_node_shard_honest_[i * num_shards_ + shard];
        ++honest_delivered_;
        registry_.counter("honest.delivered").inc();
        registry_.counter("honest.delivered" + shard_suffix).inc();
      } else {
        registry_.counter("other.delivered").inc();
      }
    });
  });

  chain_subscription_ =
      harness_.chain().subscribe_events([this](const chain::Event& ev) {
        if (ev.name == "MemberSlashed") {
          const SlashEvent event{ev.topics[0].limb[0], harness_.sim().now()};
          slashes_.push_back(event);
          registry_.counter("chain.slashes").inc();
          if (attack_start_ms_.has_value()) {
            registry_
                .histogram("slash.latency_ms",
                           {5'000, 15'000, 30'000, 60'000, 120'000})
                .observe(static_cast<double>(event.at_ms -
                                             *attack_start_ms_));
          }
        } else if (ev.name == "MemberWithdrawn") {
          withdrawals_.push_back(
              {ev.topics[0].limb[0], harness_.sim().now()});
          registry_.counter("chain.withdrawals").inc();
        }
      });
}

HarnessProbe::~HarnessProbe() {
  harness_.chain().unsubscribe_events(chain_subscription_);
  // The installed handlers capture `this`; detach them so a harness that
  // outlives the probe cannot call into a dead object.
  harness_.set_node_hook(nullptr);
  for (std::size_t i = 0; i < harness_.size(); ++i) {
    if (harness_.alive(i)) harness_.node(i).set_message_handler(nullptr);
  }
}

void HarnessProbe::mark_attack_start() {
  attack_start_ms_ = harness_.sim().now();
}

void HarnessProbe::sample(std::uint64_t epoch) {
  // One telemetry_snapshot() per node is the whole read: the node is the
  // authority on its own counters (router, pipeline, executor, traces),
  // so the probe only aggregates — it no longer re-derives any sum from
  // subsystem accessors.
  gossipsub::RouterStats router;
  rln::NodeStats nodes;
  rln::ValidatorStats pipeline;
  rln::ExecutorStats executor;
  std::size_t graylisted = 0;
  std::uint64_t traces_sampled = 0;
  std::uint64_t traces_finished = 0;
  std::map<shard::ShardId, rln::ValidatorStats> per_shard;
  // Every configured shard gets a gauge even when unhosted/idle (series
  // continuity across kill/restart cycles).
  for (std::uint16_t s = 0; s < num_shards_; ++s) per_shard[s];
  for (std::size_t i = 0; i < harness_.size(); ++i) {
    if (!harness_.alive(i)) continue;
    const rln::NodeTelemetrySnapshot t = harness_.node(i).telemetry_snapshot();
    router.delivered += t.router.delivered;
    router.duplicates += t.router.duplicates;
    router.rejected += t.router.rejected;
    router.ignored += t.router.ignored;
    router.forwarded += t.router.forwarded;
    router.validation_windows_flushed += t.router.validation_windows_flushed;
    nodes.published += t.node.published;
    nodes.publish_rate_limited += t.node.publish_rate_limited;
    nodes.slash_commits += t.node.slash_commits;
    nodes.slash_reveals += t.node.slash_reveals;
    nodes.slash_rewards += t.node.slash_rewards;
    pipeline += t.pipeline;
    executor.submitted += t.executor.submitted;
    executor.executed += t.executor.executed;
    executor.rejected += t.executor.rejected;
    executor.blocked += t.executor.blocked;
    executor.workers += t.executor.workers;
    graylisted += t.graylisted;
    traces_sampled += t.trace.sampled;
    traces_finished += t.trace.finished;
    for (const auto& [s, stats] : t.per_shard) per_shard[s] += stats;
  }

  const auto set = [this](const std::string& name, std::uint64_t v) {
    registry_.gauge(name).set(static_cast<double>(v));
  };
  set("router.delivered", router.delivered);
  set("router.duplicates", router.duplicates);
  set("router.rejected", router.rejected);
  set("router.ignored", router.ignored);
  set("router.forwarded", router.forwarded);
  set("router.validation_windows", router.validation_windows_flushed);
  set("score.graylisted", graylisted);
  set("pipeline.accepted", pipeline.accepted);
  set("pipeline.epoch_gap", pipeline.epoch_gap);
  set("pipeline.duplicates", pipeline.duplicates);
  set("pipeline.no_proof", pipeline.no_proof);
  set("pipeline.bad_proof", pipeline.bad_proof);
  set("pipeline.stale_root", pipeline.stale_root);
  set("pipeline.spam_detected", pipeline.spam_detected);
  set("pipeline.batches", pipeline.batches);
  set("pipeline.batch_fallbacks", pipeline.batch_fallbacks);
  set("pipeline.precheck_duplicates", pipeline.precheck_duplicates);
  set("log.entries", pipeline.log_entries);
  set("log.conflicts", pipeline.log_conflicts);
  set("node.published", nodes.published);
  set("node.publish_rate_limited", nodes.publish_rate_limited);
  set("node.slash_commits", nodes.slash_commits);
  set("node.slash_reveals", nodes.slash_reveals);
  set("node.slash_rewards", nodes.slash_rewards);
  set("executor.submitted", executor.submitted);
  set("executor.executed", executor.executed);
  set("executor.rejected", executor.rejected);
  set("executor.blocked", executor.blocked);
  set("executor.workers", executor.workers);
  set("trace.sampled", traces_sampled);
  set("trace.finished", traces_finished);
  const net::TrafficStats traffic = harness_.network().total_stats();
  set("net.messages_sent", traffic.messages_sent);
  set("net.bytes_sent", traffic.bytes_sent);

  // Per-shard pipeline view: where traffic died on each rate-limit
  // domain. Each node reports only the shards it hosts, so the merge is
  // already subscription-filtered.
  for (const auto& [s, shard_stats] : per_shard) {
    const std::string suffix = ".shard" + std::to_string(s);
    set("pipeline.accepted" + suffix, shard_stats.accepted);
    set("pipeline.stale_root" + suffix, shard_stats.stale_root);
    set("pipeline.spam_detected" + suffix, shard_stats.spam_detected);
    set("log.entries" + suffix, shard_stats.log_entries);
  }

  registry_.sample_epoch(epoch);
}

}  // namespace waku::sim
