// Declarative adversarial scenarios: a Scenario composes timed phases
// (warmup / attack / recovery) over an RlnHarness deployment. Each phase
// runs a Poisson honest-traffic generator over the non-adversarial nodes
// and ticks the attached Adversary strategies; a HarnessProbe classifies
// every delivery and timestamps every slash; run() returns a Report with
// the containment verdict and the full metrics registry.
//
// Everything is deterministic from ScenarioConfig::harness.seed — the same
// config replays the same campaign event-for-event.
#pragma once

#include <memory>
#include <set>

#include "obs/fleet.hpp"
#include "obs/propagation.hpp"
#include "sim/adversary.hpp"
#include "sim/report.hpp"

namespace waku::sim {

struct ScenarioConfig {
  std::string name = "scenario";
  rln::HarnessConfig harness;
  /// Generator/adversary cadence. One tick = run_ms(tick_ms), then honest
  /// publishes, then adversary on_tick()s.
  net::TimeMs tick_ms = 1'000;
  /// Poisson intensity: expected honest publishes per honest node per
  /// epoch (the node's own 1-per-epoch limit caps the realized rate).
  double honest_rate_per_epoch = 0.8;
  /// Honest senders per phase: every honest node publishes when 0;
  /// otherwise only the first N honest slots generate traffic (large
  /// deployments sample senders to keep proof generation tractable).
  std::size_t honest_publishers = 0;
  /// Post-phase drain so in-flight traffic settles before the verdict.
  net::TimeMs drain_ms = 6'000;
};

struct PhaseSpec {
  std::string name;  ///< warmup / attack / recovery (free-form)
  net::TimeMs duration_ms = 10'000;
  bool honest_traffic = true;
  /// Borrowed; must outlive the Scenario. Ticked while this phase runs.
  std::vector<Adversary*> adversaries;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  Scenario& add_phase(PhaseSpec phase);

  /// Registers all members (first call), runs every phase plus the drain,
  /// and computes the verdict. Callable once.
  Report run();

  [[nodiscard]] rln::RlnHarness& harness() { return harness_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] HarnessProbe& probe() { return probe_; }
  [[nodiscard]] obs::FleetAggregator& fleet() { return fleet_; }
  /// Cross-node propagation assembler, fed from every node's trace rings
  /// each epoch while tracing is enabled (harness.node.obs.trace
  /// .sample_every != 0); empty otherwise.
  [[nodiscard]] obs::PropagationAssembler& propagation() {
    return propagation_;
  }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

 private:
  void run_phase(const PhaseSpec& phase);
  void generate_honest_traffic();
  void sample_if_epoch_turned();
  void scrape_fleet(std::uint64_t epoch);
  void collect_propagation();
  [[nodiscard]] std::uint64_t epoch_now();
  [[nodiscard]] bool is_adversary_slot(std::size_t i) const {
    return adversary_slots_.contains(i);
  }

  ScenarioConfig config_;
  rln::RlnHarness harness_;
  MetricsRegistry metrics_;
  HarnessProbe probe_;
  /// Per-epoch cross-node health rows — the fleet-health timeline that
  /// rides in the verdict JSON (see ScenarioVerdict::fleet_timeline_json).
  obs::FleetAggregator fleet_;
  /// Per-epoch trace-ring harvest (ingestion is idempotent, so rings
  /// collected every epoch survive later kills/restarts of their node).
  obs::PropagationAssembler propagation_;
  Rng traffic_rng_;
  std::vector<PhaseSpec> phases_;
  std::vector<Adversary*> all_adversaries_;
  std::set<std::size_t> adversary_slots_;
  std::uint64_t honest_sent_ = 0;
  std::uint64_t last_sampled_epoch_ = ~std::uint64_t{0};
  std::uint64_t last_fleet_epoch_ = ~std::uint64_t{0};
  bool ran_ = false;
};

// -- Eclipse campaign --------------------------------------------------------
// The light-client eclipse does not fit the node-tick shape: the attack is
// topological (a bootstrap victim parked behind lossy links, with an
// attacker-run service replaying a stale checkpoint), so it gets its own
// declarative runner.

struct EclipseConfig {
  rln::HarnessConfig harness;
  /// Loss rate applied (via per-link overrides) to the victim's links
  /// toward honest services during the eclipse.
  double eclipse_loss = 1.0;
  /// Memberships registered after the attacker captured its checkpoint —
  /// the staleness the victim must detect.
  std::uint64_t churn_members = 6;
  /// Freshness tolerance handed to the victim (see
  /// RlnLightClient::set_max_bootstrap_lag).
  std::uint64_t max_bootstrap_lag = 2;
};

struct EclipseOutcome {
  std::uint64_t stale_served = 0;       ///< attacker responses delivered
  std::uint64_t stale_rejections = 0;   ///< victim-side staleness rejects
  bool victim_detected_stale = false;   ///< refused the eclipse checkpoint
  bool honest_bootstrap_after = false;  ///< recovered once links healed
};

/// Runs the full eclipse campaign: capture → churn → eclipse bootstrap
/// (must be detected) → heal links → honest bootstrap (must succeed).
EclipseOutcome run_eclipse_campaign(const EclipseConfig& config);

// -- Shard-targeted flood campaign -------------------------------------------
// The scale-out containment claim of the sharded relay: a rate-limit flood
// aimed at ONE shard must stay confined there — honest delivery on every
// other shard is untouched, the flooder is slashed by the attacked shard's
// validators, and no spam crosses shard meshes. Nodes are partitioned
// round-robin over the shards (slot i hosts shard i mod S), honest slots
// publish on their home shard's content topics, and the flooder bursts on
// the attacked shard.

struct ShardFloodConfig {
  /// Deployment template; node.shards.num_shards picks the shard count
  /// (the runner installs the round-robin shard assignment itself).
  rln::HarnessConfig harness;
  shard::ShardId attacked_shard = 0;
  std::uint64_t flood_burst_per_epoch = 6;
  net::TimeMs tick_ms = 1'000;
  net::TimeMs warmup_ms = 10'000;
  net::TimeMs attack_ms = 30'000;
  net::TimeMs drain_ms = 6'000;
  /// Poisson intensity per honest node per epoch (the per-shard quota
  /// caps the realized rate).
  double honest_rate_per_epoch = 0.8;
};

struct ShardFloodOutcome {
  std::uint16_t num_shards = 0;
  shard::ShardId attacked_shard = 0;
  std::uint64_t spam_sent = 0;
  bool attacker_slashed = false;
  std::optional<std::uint64_t> time_to_slash_ms;
  std::vector<std::uint64_t> honest_sent_by_shard;
  std::vector<std::uint64_t> honest_delivered_by_shard;  ///< at honest nodes
  std::vector<double> honest_delivery_by_shard;  ///< vs ideal full delivery
  std::vector<std::uint64_t> spam_delivered_by_shard;  ///< at honest nodes
  /// Worst honest delivery ratio across shards other than the attacked
  /// one — the containment number (1.0 = the flood cost nothing there).
  double min_non_attacked_delivery = 0;
  /// Spam deliveries observed on any non-attacked shard (must be 0: shard
  /// meshes are disjoint).
  std::uint64_t spam_on_non_attacked_shards = 0;

  /// Cross-node propagation rollup, assembled from every node's trace
  /// rings each epoch. Populated only when the harness config enables
  /// tracing (node.obs.trace.sample_every != 0); zeros/"{}" otherwise.
  std::size_t propagation_trees = 0;
  std::size_t propagation_complete = 0;
  std::size_t propagation_incomplete = 0;
  std::size_t propagation_rejected = 0;
  /// Trees anchored at the flooder (within-quota spam accepted
  /// fleet-wide plus rootless attack fragments) — forensics material.
  std::size_t propagation_adversary = 0;
  /// complete / (trees - rejected - adversary): the honest-tree
  /// reconstruction rate the acceptance gate judges (1.0 when nothing
  /// was sampled).
  double complete_tree_fraction = 1.0;
  double propagation_p95_ms = 0.0;  ///< publish -> last delivery, virtual
  double propagation_redundancy = 0.0;
  double propagation_reachability = 1.0;
  /// obs::PropagationSummary::to_json() — compact rollup without the
  /// per-tree detail array ("{}" without tracing).
  std::string propagation_json = "{}";
  /// Chrome trace-event export for chrome://tracing / Perfetto.
  std::string chrome_trace_json = "{}";

  [[nodiscard]] std::string to_json() const;
};

ShardFloodOutcome run_shard_flood_campaign(const ShardFloodConfig& config);

// -- Live reshard campaign ---------------------------------------------------
// The generation-cutover claim of the live reshard engine: a fleet can
// move from F to T shards under sustained honest load with (a) no honest
// message loss beyond gossip noise, (b) ZERO quota doubling through the
// overlap window — an attacker publishing same-epoch pairs (one on the
// old-generation mesh, one on the new) gets them folded into one signal
// by the shared domain log and is slashed — and (c) a bounded throughput
// dip. Nodes are partitioned round-robin on both layouts (slot i hosts
// old shard i mod F and new shard i mod T; T a multiple of F, so the new
// home refines the old one per ShardMap::split), honest slots publish on
// their home shard's topics, and every node steps through
// announce/overlap/drain/drop-old in driver-timed lockstep while the
// flooder attacks the overlap.

struct LiveReshardConfig {
  /// Deployment template; node.shards.num_shards is the FROM shard count
  /// (the runner installs the round-robin assignment itself).
  rln::HarnessConfig harness;
  std::uint16_t target_shards = 8;
  net::TimeMs tick_ms = 1'000;
  /// Pre-reshard steady state (throughput baseline).
  net::TimeMs warmup_ms = 12'000;
  net::TimeMs announce_ms = 4'000;
  /// Dual-subscribe window; the flooder attacks it.
  net::TimeMs overlap_ms = 16'000;
  /// New generation authoritative, old meshes still draining.
  net::TimeMs drain_phase_ms = 8'000;
  /// Post-drop-old steady state (throughput recovery).
  net::TimeMs settle_ms = 12'000;
  /// Final quiesce before the verdict (in-flight traffic + slash txs).
  net::TimeMs quiesce_ms = 8'000;
  double honest_rate_per_epoch = 0.8;
  /// Old/new same-epoch publish pairs per epoch from the overlap
  /// attacker (0 disables the attack).
  std::uint64_t flood_pairs_per_epoch = 2;
};

struct LiveReshardOutcome {
  std::uint16_t from_shards = 0;
  std::uint16_t to_shards = 0;
  bool all_nodes_converged = false;  ///< every node on (to_shards, gen+1)

  std::uint64_t honest_sent = 0;
  std::uint64_t honest_delivered = 0;  ///< at honest nodes, local included
  std::uint64_t honest_ideal = 0;      ///< sent × hosts of the target mesh
  double honest_delivery = 1.0;        ///< delivered / ideal

  std::uint64_t spam_pairs_sent = 0;
  std::uint64_t spam_delivered = 0;
  /// (node, epoch) pairs where BOTH halves of an attacker pair were
  /// delivered — each one is a doubled quota; the engine's invariant is
  /// that this stays 0.
  std::uint64_t quota_double_deliveries = 0;
  bool attacker_slashed = false;
  std::optional<std::uint64_t> time_to_slash_ms;

  net::TimeMs cutover_duration_ms = 0;  ///< begin_reshard -> drop-old done
  double steady_msgs_per_sec = 0;   ///< honest deliveries/sec pre-reshard
  double cutover_msgs_per_sec = 0;  ///< during announce+overlap+drain
  double post_msgs_per_sec = 0;     ///< after drop-old
  double throughput_dip = 0;        ///< 1 - cutover/steady (0 = no dip)
  /// Honest deliveries that happened inside the overlap window — the
  /// traffic in flight while both generations were live.
  std::uint64_t overlap_messages_in_flight = 0;
  /// The load tracker's verdict sampled on the pre-reshard deployment
  /// (did the signal that should trigger this reshard actually fire?).
  bool rebalance_was_recommended = false;

  [[nodiscard]] std::string to_json() const;
};

LiveReshardOutcome run_live_reshard_campaign(const LiveReshardConfig& config);

// -- Operator hotspot campaign -----------------------------------------------
// The autonomous-operator claim: under a sustained single-shard hotspot,
// every node's own operator loop (ShardLoadTracker::recommend +
// AnomalyEngine pressure, consumed in upkeep) triggers begin_reshard and
// walks the staged cutover to completion WITHOUT any driver lockstep —
// the campaign only generates traffic and watches. Honest slot i
// publishes on a pre-picked topic homed on new shard i mod T, the
// optional overlap attacker (slot 1) sends cross-generation same-epoch
// pairs while its own node is in overlap/drain, and a fleet aggregator
// scrapes every node's health each epoch into the timeline the verdict
// carries.

struct OperatorHotspotConfig {
  /// Deployment template; node.shards.num_shards is the FROM count
  /// (typically 1 — the hotspot). The runner installs the round-robin
  /// assignment, enables the operator loop on every node, and gives slot
  /// i the subscribe chooser {i mod target}.
  rln::HarnessConfig harness;
  std::uint16_t target_shards = 2;
  net::TimeMs tick_ms = 1'000;
  /// Epoch budget for the whole trigger + cutover; the campaign stops
  /// early once every node converged.
  std::uint64_t max_epochs = 30;
  /// Post-convergence quiesce (in-flight traffic + the slash tx).
  net::TimeMs quiesce_ms = 10'000;
  double honest_rate_per_epoch = 0.8;
  /// Cross-generation same-epoch pairs per epoch from the overlap
  /// attacker (0 disables the attack).
  std::uint64_t flood_pairs_per_epoch = 2;
  /// Operator tuning installed on every node. The overload budget must
  /// sit inside (realized_rate / split_factor, realized_rate) so the
  /// tracker both trips AND sizes the split to `target_shards`.
  double overload_msgs_per_sec = 1.8;
  std::uint64_t cooldown_epochs = 1'000;  ///< one action per campaign
  std::size_t trip_epochs = 2;
  std::uint64_t phase_dwell_epochs = 2;

  [[nodiscard]] std::string to_json() const;
};

struct OperatorHotspotOutcome {
  std::uint16_t from_shards = 0;
  std::uint16_t to_shards = 0;  ///< target the operators actually chose

  bool operator_triggered = false;
  std::uint64_t trigger_epoch = 0;  ///< earliest begin decision, fleet-wide
  bool converged = false;  ///< every node on (target, gen+1, kStable)
  std::uint64_t converged_epoch = 0;
  std::uint64_t epochs_to_converge = 0;  ///< trigger -> converged
  /// Sum of operator decisions across the fleet (begin + advances); with
  /// one clean cutover this is exactly 4 x nodes.
  std::uint64_t operator_decisions = 0;

  std::uint64_t honest_sent = 0;
  std::uint64_t honest_delivered = 0;
  std::uint64_t honest_ideal = 0;
  double honest_delivery = 1.0;

  std::uint64_t spam_pairs_sent = 0;
  std::uint64_t spam_delivered = 0;
  std::uint64_t quota_double_deliveries = 0;
  bool attacker_slashed = false;
  std::optional<std::uint64_t> time_to_slash_ms;

  /// Fleet-side anomaly fire transitions over the campaign (the p95 and
  /// delivery rules; 0 on a healthy run).
  std::uint64_t anomalies_fired = 0;
  /// Per-epoch fleet rows (FleetAggregator::timeline_json).
  std::string fleet_timeline_json = "[]";
  /// Node 0's flight-recorder dump at campaign end — operator decisions,
  /// reshard transitions, slashes, in order.
  std::string postmortem_json;

  [[nodiscard]] std::string to_json() const;
};

OperatorHotspotOutcome run_operator_hotspot_campaign(
    const OperatorHotspotConfig& config);

}  // namespace waku::sim
