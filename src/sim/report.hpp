// Per-scenario verdicts: the containment numbers the paper's claims are
// judged on, computed by Scenario::run() and exported as JSON (single
// report or a campaign file the perf trajectory tracks).
//
//   spam_containment_ratio   spam deliveries at honest nodes, normalized
//                            per honest node per spam message — 0 is
//                            perfect containment, 1 means every spam
//                            message reached every honest node;
//   time_to_slash            first MemberSlashed after the attack began;
//   honest_delivery_ratio    honest deliveries at honest nodes over the
//                            ideal (every sender reaches every honest
//                            node, sender included);
//   honest_false_positive_rate  honest members slashed / honest members.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace waku::sim {

/// Per-adversary breakdown for coalition campaigns (several strategies
/// attacking in one scenario): each strategy gets its own slash
/// attribution and latency so one verdict JSON answers "who was caught,
/// and how fast" per attacker, not just in aggregate.
struct AdversaryVerdict {
  std::string name;
  std::uint64_t spam_sent = 0;
  std::uint64_t controlled_nodes = 0;
  std::uint64_t slashes = 0;  ///< MemberSlashed on this adversary's indices
  std::optional<std::uint64_t> time_to_slash_ms;

  [[nodiscard]] std::string to_json() const;
};

struct ScenarioVerdict {
  std::string scenario;
  std::uint64_t seed = 0;
  std::uint64_t nodes = 0;
  std::uint64_t honest_nodes = 0;
  std::uint64_t adversary_nodes = 0;

  std::uint64_t spam_sent = 0;
  std::uint64_t spam_delivered_honest = 0;
  double spam_containment_ratio = 0;

  std::uint64_t honest_sent = 0;
  std::uint64_t honest_delivered_honest = 0;
  double honest_delivery_ratio = 0;

  std::uint64_t slashes = 0;
  std::uint64_t adversary_slashes = 0;
  std::uint64_t honest_slashes = 0;
  double honest_false_positive_rate = 0;
  std::uint64_t withdrawals = 0;

  std::optional<std::uint64_t> time_to_slash_ms;
  std::optional<std::uint64_t> time_to_slash_epochs;

  /// One entry per distinct adversary in the campaign (coalitions get one
  /// each); empty for adversary-free scenarios.
  std::vector<AdversaryVerdict> per_adversary;

  /// Per-epoch fleet-health rows (obs::FleetAggregator::timeline_json):
  /// honest-delivery ratio, containment drift, p95 spread, quota
  /// saturation, log growth — the whole campaign's trajectory, not just
  /// the end-of-run numbers above. A JSON array; "[]" when the scenario
  /// never sampled an epoch.
  std::string fleet_timeline_json = "[]";

  /// Cross-node propagation rollup (obs::PropagationAssembler
  /// summary_json): tree counts, publish->delivery quantiles, hop
  /// histogram, redundancy, reachability, plus per-tree detail. "{}"
  /// when the scenario ran without tracing (sample_every == 0).
  std::string propagation_json = "{}";

  [[nodiscard]] std::string to_json() const;
};

struct Report {
  ScenarioVerdict verdict;
  std::string metrics_json;  ///< MetricsRegistry::to_json() at scenario end

  /// {"verdict": {...}, "metrics": {...}}
  [[nodiscard]] std::string to_json() const;
};

/// Writes a campaign file: {"reports": [...]}; returns false on IO error.
bool write_report_file(const std::vector<Report>& reports,
                       const std::string& path);

}  // namespace waku::sim
