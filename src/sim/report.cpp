#include "sim/report.hpp"

#include <cstdio>

namespace waku::sim {

namespace {

void field(std::string& out, const char* name, std::uint64_t v,
           bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu%s", name,
                static_cast<unsigned long long>(v),
                trailing_comma ? ", " : "");
  out += buf;
}

void field(std::string& out, const char* name, double v,
           bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %.6f%s", name, v,
                trailing_comma ? ", " : "");
  out += buf;
}

void optional_field(std::string& out, const char* name,
                    const std::optional<std::uint64_t>& v) {
  if (v.has_value()) {
    field(out, name, *v);
  } else {
    out += std::string("\"") + name + "\": null, ";
  }
}

}  // namespace

std::string AdversaryVerdict::to_json() const {
  std::string out = "{";
  out += "\"name\": \"" + name + "\", ";
  field(out, "spam_sent", spam_sent);
  field(out, "controlled_nodes", controlled_nodes);
  field(out, "slashes", slashes);
  optional_field(out, "time_to_slash_ms", time_to_slash_ms);
  out += "\"schema\": 1}";
  return out;
}

std::string ScenarioVerdict::to_json() const {
  std::string out = "{";
  out += "\"scenario\": \"" + scenario + "\", ";
  field(out, "seed", seed);
  field(out, "nodes", nodes);
  field(out, "honest_nodes", honest_nodes);
  field(out, "adversary_nodes", adversary_nodes);
  field(out, "spam_sent", spam_sent);
  field(out, "spam_delivered_honest", spam_delivered_honest);
  field(out, "spam_containment_ratio", spam_containment_ratio);
  field(out, "honest_sent", honest_sent);
  field(out, "honest_delivered_honest", honest_delivered_honest);
  field(out, "honest_delivery_ratio", honest_delivery_ratio);
  field(out, "slashes", slashes);
  field(out, "adversary_slashes", adversary_slashes);
  field(out, "honest_slashes", honest_slashes);
  field(out, "honest_false_positive_rate", honest_false_positive_rate);
  field(out, "withdrawals", withdrawals);
  optional_field(out, "time_to_slash_ms", time_to_slash_ms);
  optional_field(out, "time_to_slash_epochs", time_to_slash_epochs);
  out += "\"per_adversary\": [";
  for (std::size_t i = 0; i < per_adversary.size(); ++i) {
    if (i > 0) out += ", ";
    out += per_adversary[i].to_json();
  }
  out += "], ";
  out += "\"fleet_timeline\": " +
         (fleet_timeline_json.empty() ? std::string("[]")
                                      : fleet_timeline_json) +
         ", ";
  out += "\"propagation\": " +
         (propagation_json.empty() ? std::string("{}") : propagation_json) +
         ", ";
  // Trailing sentinel keeps the field() helpers uniform.
  out += "\"schema\": 4}";
  return out;
}

std::string Report::to_json() const {
  return "{\"verdict\": " + verdict.to_json() +
         ",\n\"metrics\": " + metrics_json + "}";
}

bool write_report_file(const std::vector<Report>& reports,
                       const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\n\"reports\": [\n", f);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const std::string json = reports[i].to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputs(i + 1 < reports.size() ? ",\n" : "\n", f);
  }
  std::fputs("]\n}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace waku::sim
