// Metrics registry for the adversarial scenario engine: named counters,
// gauges, and fixed-bucket histograms with per-epoch time series and JSON
// export. One registry per scenario keeps campaigns deterministic and
// comparable; global_metrics() exists for ad-hoc probes.
//
// The registry is fed two ways:
//   * event-driven — adversaries, traffic generators, and the HarnessProbe
//     increment counters as things happen (spam sent/delivered, slashes);
//   * sampled — HarnessProbe::sample(epoch) reads the deployment-wide
//     counters the stack already maintains (gossipsub::RouterStats,
//     rln::ValidatorStats, NullifierLog stats, PeerScore graylists,
//     NodeStats, net::TrafficStats) into gauges and snapshots every
//     counter/gauge into the per-epoch series.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rln/harness.hpp"

namespace waku::sim {

class Counter {
 public:
  void inc(std::uint64_t d = 1) { value_ += d; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds = {});
  void observe(double v);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] pairs with bounds()[i]; counts().back() is the overflow.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0;
};

class MetricsRegistry {
 public:
  /// Named lookup creates on first use; names are stable keys in the JSON
  /// export (std::map keeps the output deterministically ordered).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Bounds apply on first creation only.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  /// Snapshots every counter and gauge into the per-epoch time series.
  /// Sampling the same epoch twice overwrites (a scenario tick can land on
  /// an epoch boundary twice).
  void sample_epoch(std::uint64_t epoch);

  struct SeriesPoint {
    std::uint64_t epoch;
    double value;
  };
  [[nodiscard]] const std::vector<SeriesPoint>& series(
      const std::string& name) const;

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Full JSON dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "series": {...}}.
  [[nodiscard]] std::string to_json() const;

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<SeriesPoint>> series_;
};

/// Shared default registry for probes outside a scenario.
MetricsRegistry& global_metrics();

/// Payload tags the scenario engine uses to classify delivered traffic.
/// Generators and adversaries prefix payloads; the probe's per-node
/// delivery handler classifies on the prefix.
inline constexpr std::string_view kHonestTag = "ok|";
inline constexpr std::string_view kSpamTag = "spam|";

/// Instrumentation bridge between an RlnHarness deployment and a
/// MetricsRegistry:
///
///   * installs (via RlnHarness::set_node_hook, so kill/restart cycles
///     re-attach) a per-node delivery handler that classifies payloads by
///     tag into spam/honest delivery counters — per node, per relay shard
///     (via the deployment's ShardMap over the delivered content topic),
///     and in aggregate;
///   * subscribes to the chain event stream to timestamp MemberSlashed /
///     MemberWithdrawn events (time-to-slash measurement);
///   * sample(epoch) reads router/pipeline/nullifier-log/peer-score/node
///     counters across the deployment into gauges (pipeline verdicts also
///     per shard) and snapshots the series.
class HarnessProbe {
 public:
  HarnessProbe(rln::RlnHarness& harness, MetricsRegistry& registry);
  ~HarnessProbe();

  HarnessProbe(const HarnessProbe&) = delete;
  HarnessProbe& operator=(const HarnessProbe&) = delete;

  /// Samples deployment-wide stats into gauges and snapshots the series.
  void sample(std::uint64_t epoch);

  /// Marks "the attack started now" — slash latencies observed later are
  /// measured against this.
  void mark_attack_start();

  struct SlashEvent {
    std::uint64_t index;
    net::TimeMs at_ms;
  };

  [[nodiscard]] std::uint64_t spam_delivered() const {
    return spam_delivered_;
  }
  [[nodiscard]] std::uint64_t honest_delivered() const {
    return honest_delivered_;
  }
  [[nodiscard]] std::uint64_t node_spam_delivered(std::size_t i) const {
    return per_node_spam_[i];
  }
  [[nodiscard]] std::uint64_t node_honest_delivered(std::size_t i) const {
    return per_node_honest_[i];
  }
  /// Per-(node, shard) delivery classification — the shard is the one the
  /// delivered message's content topic maps to under the deployment's
  /// shard layout.
  [[nodiscard]] std::uint64_t node_shard_spam_delivered(
      std::size_t i, shard::ShardId shard) const {
    return per_node_shard_spam_[i * num_shards_ + shard];
  }
  [[nodiscard]] std::uint64_t node_shard_honest_delivered(
      std::size_t i, shard::ShardId shard) const {
    return per_node_shard_honest_[i * num_shards_ + shard];
  }
  [[nodiscard]] std::uint16_t num_shards() const { return num_shards_; }
  [[nodiscard]] const std::vector<SlashEvent>& slashes() const {
    return slashes_;
  }
  [[nodiscard]] const std::vector<SlashEvent>& withdrawals() const {
    return withdrawals_;
  }
  [[nodiscard]] std::optional<net::TimeMs> attack_start_ms() const {
    return attack_start_ms_;
  }
  [[nodiscard]] std::optional<net::TimeMs> first_slash_ms() const {
    return slashes_.empty() ? std::nullopt
                            : std::optional<net::TimeMs>(slashes_[0].at_ms);
  }

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }

 private:
  rln::RlnHarness& harness_;
  MetricsRegistry& registry_;
  shard::ShardMap shard_map_;  ///< the deployment's layout (node template)
  std::uint16_t num_shards_ = 1;
  std::vector<std::uint64_t> per_node_spam_;
  std::vector<std::uint64_t> per_node_honest_;
  std::vector<std::uint64_t> per_node_shard_spam_;    ///< [node * S + shard]
  std::vector<std::uint64_t> per_node_shard_honest_;  ///< [node * S + shard]
  std::uint64_t spam_delivered_ = 0;
  std::uint64_t honest_delivered_ = 0;
  std::vector<SlashEvent> slashes_;
  std::vector<SlashEvent> withdrawals_;
  std::optional<net::TimeMs> attack_start_ms_;
  std::uint64_t chain_subscription_ = 0;
};

}  // namespace waku::sim
