#include "gossipsub/peer_score.hpp"

#include <algorithm>

namespace waku::gossipsub {

void PeerScore::record_mesh_tick(NodeId peer) {
  Counters& c = peers_[peer];
  c.time_in_mesh =
      std::min(c.time_in_mesh + 1.0,
               config_.time_in_mesh_cap / std::max(config_.time_in_mesh_weight,
                                                   1e-9));
}

void PeerScore::record_first_delivery(NodeId peer) {
  Counters& c = peers_[peer];
  c.first_deliveries = std::min(
      c.first_deliveries + 1.0,
      config_.first_message_cap / std::max(config_.first_message_weight, 1e-9));
}

void PeerScore::record_invalid_message(NodeId peer) {
  peers_[peer].invalid_messages += 1.0;
}

void PeerScore::record_behaviour_penalty(NodeId peer) {
  peers_[peer].behaviour_penalty += 1.0;
}

void PeerScore::decay_all() {
  for (auto& [peer, c] : peers_) {
    c.first_deliveries *= config_.decay;
    c.invalid_messages *= config_.decay;
    c.behaviour_penalty *= config_.decay;
    // Counters below noise floor snap to zero (libp2p decayToZero).
    if (c.first_deliveries < 0.01) c.first_deliveries = 0;
    if (c.invalid_messages < 0.01) c.invalid_messages = 0;
    if (c.behaviour_penalty < 0.01) c.behaviour_penalty = 0;
  }
}

std::size_t PeerScore::graylist_count() const {
  std::size_t n = 0;
  for (const auto& [peer, c] : peers_) {
    if (score(peer) < config_.graylist_threshold) ++n;
  }
  return n;
}

double PeerScore::score(NodeId peer) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return 0.0;
  const Counters& c = it->second;
  double s = 0.0;
  s += config_.time_in_mesh_weight * c.time_in_mesh;
  s += config_.first_message_weight * c.first_deliveries;
  s += config_.invalid_message_weight * c.invalid_messages * c.invalid_messages;
  s += config_.behaviour_penalty_weight * c.behaviour_penalty *
       c.behaviour_penalty;
  return s;
}

}  // namespace waku::gossipsub
