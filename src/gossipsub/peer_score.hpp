// libp2p GossipSub v1.1 peer scoring (paper [2]) — the reputation-based
// spam defence the paper contrasts with RLN. Simplified to the components
// that matter for spam: time-in-mesh (P1), first-message deliveries (P2),
// invalid messages (P4), and the behavioural penalty (P7), with the three
// standard action thresholds.
//
// The paper's critique — "prone to censorship and subject to inexpensive
// attacks where the spammer deploys millions of bots" — is reproduced in
// E7: each fresh Sybil identity starts with a neutral score and gets a free
// window of spam before crossing the graylist threshold.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "gossipsub/types.hpp"

namespace waku::gossipsub {

struct PeerScoreConfig {
  double time_in_mesh_weight = 0.01;   ///< P1, per heartbeat in mesh
  double time_in_mesh_cap = 50.0;
  double first_message_weight = 1.0;   ///< P2
  double first_message_cap = 50.0;
  double invalid_message_weight = -10.0;  ///< P4 (counter is squared)
  double behaviour_penalty_weight = -5.0;  ///< P7 (counter is squared)
  double decay = 0.9;  ///< applied to P2/P4/P7 counters each heartbeat

  // Action thresholds (negative numbers; libp2p convention).
  double gossip_threshold = -10.0;   ///< below: no gossip exchange
  double publish_threshold = -50.0;  ///< below: no self-published flood
  double graylist_threshold = -80.0; ///< below: ignore peer entirely
};

class PeerScore {
 public:
  explicit PeerScore(PeerScoreConfig config = {}) : config_(config) {}

  /// P1: called each heartbeat for peers currently in a mesh.
  void record_mesh_tick(NodeId peer);

  /// P2: peer was the first to deliver a valid message.
  void record_first_delivery(NodeId peer);

  /// P4: peer delivered a message that failed validation.
  void record_invalid_message(NodeId peer);

  /// P7: protocol misbehaviour (e.g. GRAFT while graylisted).
  void record_behaviour_penalty(NodeId peer);

  /// Applies counter decay; call once per heartbeat.
  void decay_all();

  [[nodiscard]] double score(NodeId peer) const;

  [[nodiscard]] bool below_gossip(NodeId peer) const {
    return score(peer) < config_.gossip_threshold;
  }
  [[nodiscard]] bool below_publish(NodeId peer) const {
    return score(peer) < config_.publish_threshold;
  }
  [[nodiscard]] bool graylisted(NodeId peer) const {
    return score(peer) < config_.graylist_threshold;
  }

  /// Peers currently below the graylist threshold — the router-level
  /// containment signal the adversarial scenario metrics sample per epoch.
  [[nodiscard]] std::size_t graylist_count() const;
  /// Peers with any score state at all (denominator for graylist ratios).
  [[nodiscard]] std::size_t scored_peer_count() const { return peers_.size(); }

  [[nodiscard]] const PeerScoreConfig& config() const { return config_; }

 private:
  struct Counters {
    double time_in_mesh = 0;
    double first_deliveries = 0;
    double invalid_messages = 0;
    double behaviour_penalty = 0;
  };

  PeerScoreConfig config_;
  std::unordered_map<NodeId, Counters> peers_;
};

}  // namespace waku::gossipsub
