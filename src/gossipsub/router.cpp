#include "gossipsub/router.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace waku::gossipsub {

GossipSubRouter::GossipSubRouter(net::Network& network, GossipSubConfig config,
                                 PeerScoreConfig score_config,
                                 std::uint64_t seed)
    : network_(network),
      config_(config),
      id_(network.add_node(this)),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (id_ + 1))),
      scores_(score_config) {
  mcache_windows_.emplace_back();
}

void GossipSubRouter::start() {
  heartbeat_task_ = network_.sim().schedule_every(
      config_.heartbeat_interval_ms, [this] { heartbeat(); });
}

void GossipSubRouter::stop() {
  if (heartbeat_task_ != 0) {
    network_.sim().cancel(heartbeat_task_);
    heartbeat_task_ = 0;
  }
}

void GossipSubRouter::subscribe(const std::string& topic,
                                DeliveryHandler handler) {
  WAKU_EXPECTS(handler != nullptr);
  handlers_[topic] = std::move(handler);
  Frame frame;
  frame.type = FrameType::kSubscribe;
  frame.topic = topic;
  for (const NodeId peer : network_.neighbors(id_)) {
    send_frame(peer, frame);
    announced_[peer].insert(topic);
  }
}

void GossipSubRouter::unsubscribe(const std::string& topic) {
  // Settle buffered publishes while the handler/validator are still
  // installed: their ids already sit in seen_, so silently discarding
  // them would make them undeliverable until the seen TTL expires.
  flush_topic_validation(topic);
  handlers_.erase(topic);
  validators_.erase(topic);
  pending_validation_.erase(topic);
  Frame frame;
  frame.type = FrameType::kUnsubscribe;
  frame.topic = topic;
  // Retract the announcement from every peer we can reach now; peers we
  // CANNOT reach keep their announced_ entry, which the heartbeat reads
  // as "still believes we subscribe" and retracts once the link is back
  // (a late (re)joined peer must not graft a mesh we already left).
  for (const NodeId peer : network_.neighbors(id_)) {
    send_frame(peer, frame);
    if (const auto it = announced_.find(peer); it != announced_.end()) {
      it->second.erase(topic);
    }
  }
  // Leave the mesh politely.
  if (const auto it = mesh_.find(topic); it != mesh_.end()) {
    Frame prune;
    prune.type = FrameType::kPrune;
    prune.topic = topic;
    for (const NodeId peer : it->second) send_frame(peer, prune);
    mesh_.erase(it);
  }
}

void GossipSubRouter::set_validator(const std::string& topic,
                                    Validator validator) {
  // Single-message validators ride the batch entry point (a loop over the
  // window) when batching is on; the original callable is kept alongside
  // so unbatched inline validation stays a direct, allocation-free call.
  TopicValidator& hooks = validators_[topic];
  hooks.single = validator;
  hooks.batch = [validator = std::move(validator)](
                    std::span<const IncomingMessage> batch) {
    std::vector<ValidationResult> results;
    results.reserve(batch.size());
    for (const IncomingMessage& incoming : batch) {
      results.push_back(validator(incoming.from, incoming.msg));
    }
    return results;
  };
}

void GossipSubRouter::set_batch_validator(const std::string& topic,
                                          BatchValidator validator) {
  validators_[topic] = TopicValidator{nullptr, std::move(validator)};
}

std::vector<NodeId> GossipSubRouter::topic_peers(
    const std::string& topic) const {
  std::vector<NodeId> out;
  for (const NodeId peer : network_.neighbors(id_)) {
    const auto it = peer_topics_.find(peer);
    if (it != peer_topics_.end() && it->second.contains(topic)) {
      out.push_back(peer);
    }
  }
  return out;
}

MessageId GossipSubRouter::publish(const std::string& topic, Bytes data) {
  PubSubMessage msg;
  msg.topic = topic;
  msg.data = std::move(data);
  msg.origin = id_;
  msg.seqno = seqno_++;
  const MessageId id = msg.id();

  seen_.emplace(id, network_.sim().now());
  mcache_.emplace(id, msg);
  mcache_windows_.front().emplace_back(topic, id);

  // Deliver locally.
  if (const auto it = handlers_.find(topic); it != handlers_.end()) {
    ++stats_.delivered;
    it->second(msg);
  }

  Frame frame;
  frame.type = FrameType::kPublish;
  frame.topic = topic;
  frame.message = msg;

  if (config_.flood_publish) {
    for (const NodeId peer : topic_peers(topic)) {
      if (scores_.below_publish(peer)) continue;
      send_publish_frame(peer, frame);
    }
  } else {
    const auto it = mesh_.find(topic);
    if (it != mesh_.end()) {
      for (const NodeId peer : it->second) send_publish_frame(peer, frame);
    } else {
      // Fanout: not in the mesh for this topic (e.g. publish-only peer).
      auto peers = topic_peers(topic);
      std::shuffle(peers.begin(), peers.end(), rng_);
      if (peers.size() > config_.mesh_n) peers.resize(config_.mesh_n);
      for (const NodeId peer : peers) send_publish_frame(peer, frame);
    }
  }
  return id;
}

MessageId GossipSubRouter::publish_to(const std::string& topic, Bytes data,
                                      std::span<const NodeId> peers) {
  PubSubMessage msg;
  msg.topic = topic;
  msg.data = std::move(data);
  msg.origin = id_;
  msg.seqno = seqno_++;
  const MessageId id = msg.id();

  // Marked seen/cached like any own publish so echoes deduplicate, but
  // deliberately NOT delivered locally and NOT flooded: the caller chose
  // exactly who sees it.
  seen_.emplace(id, network_.sim().now());
  mcache_.emplace(id, msg);
  mcache_windows_.front().emplace_back(topic, id);

  Frame frame;
  frame.type = FrameType::kPublish;
  frame.topic = topic;
  frame.message = msg;
  for (const NodeId peer : peers) send_publish_frame(peer, frame);
  return id;
}

void GossipSubRouter::send_frame(NodeId to, const Frame& frame) {
  network_.send(id_, to, encode_frame(frame));
}

void GossipSubRouter::send_publish_frame(NodeId to, const Frame& frame) {
  send_frame(to, frame);
  if (trace_hook_) trace_hook_("fwd", to, *frame.message);
}

void GossipSubRouter::on_message(NodeId from, BytesView payload) {
  Frame frame;
  try {
    frame = decode_frame(payload);
  } catch (const std::exception&) {
    scores_.record_behaviour_penalty(from);
    return;
  }

  if (scores_.graylisted(from)) {
    // Graylisted peers are ignored wholesale (libp2p behaviour).
    if (frame.type == FrameType::kGraft) {
      scores_.record_behaviour_penalty(from);
    }
    return;
  }

  switch (frame.type) {
    case FrameType::kPublish:
      handle_publish(from, *frame.message);
      break;
    case FrameType::kIHave:
      handle_ihave(from, frame.topic, frame.ids);
      break;
    case FrameType::kIWant:
      handle_iwant(from, frame.ids);
      break;
    case FrameType::kGraft:
      handle_graft(from, frame.topic);
      break;
    case FrameType::kPrune:
      handle_prune(from, frame.topic);
      break;
    case FrameType::kSubscribe:
      peer_topics_[from].insert(frame.topic);
      break;
    case FrameType::kUnsubscribe:
      peer_topics_[from].erase(frame.topic);
      if (const auto it = mesh_.find(frame.topic); it != mesh_.end()) {
        it->second.erase(from);
      }
      break;
  }
}

void GossipSubRouter::handle_publish(NodeId from, const PubSubMessage& msg) {
  const MessageId id = msg.id();
  if (seen_.contains(id)) {
    ++stats_.duplicates;
    if (trace_hook_) trace_hook_("dup", from, msg);
    return;
  }
  seen_.emplace(id, network_.sim().now());

  if (!handlers_.contains(msg.topic)) {
    // The sender believes we subscribe (mesh relay or fanout target),
    // so our kUnsubscribe must have been lost in transit — retract
    // again. Idempotent, bounded by the sender's own rate, and each
    // delivery is a fresh trial, so the stale belief converges away
    // even on lossy links (where a single send-time retraction cannot).
    Frame retract;
    retract.type = FrameType::kUnsubscribe;
    retract.topic = msg.topic;
    send_frame(from, retract);
  }

  // Validation gate — spam dies here, at the first hop (paper §IV). With
  // batching enabled the message waits for a validation window; buffered
  // messages already count as seen, so echoes keep deduplicating.
  const auto vit = validators_.find(msg.topic);
  if (vit == validators_.end()) {
    dispatch_validated(from, msg, id, ValidationResult::kAccept);
    return;
  }
  const TimeMs now = network_.local_time(id_);
  if (config_.validation_batch_max <= 1) {
    if (vit->second.single != nullptr) {
      // Direct call — no result vector on the unbatched hot path.
      dispatch_validated(from, msg, id, vit->second.single(from, msg));
      return;
    }
    const IncomingMessage one{from, now, msg};
    const std::vector<ValidationResult> results =
        vit->second.batch(std::span<const IncomingMessage>(&one, 1));
    dispatch_validated(
        from, msg, id,
        results.empty() ? ValidationResult::kIgnore : results.front());
    return;
  }
  auto& pending = pending_validation_[msg.topic];
  pending.push_back(BufferedPublish{from, now, id, msg});
  if (pending.size() >= config_.validation_batch_max) {
    flush_topic_validation(msg.topic);
  }
}

void GossipSubRouter::dispatch_validated(NodeId from, const PubSubMessage& msg,
                                         const MessageId& id,
                                         ValidationResult result) {
  if (result == ValidationResult::kReject) {
    ++stats_.rejected;
    scores_.record_invalid_message(from);
    return;
  }
  if (result == ValidationResult::kIgnore) {
    ++stats_.ignored;
    return;
  }

  scores_.record_first_delivery(from);
  mcache_.emplace(id, msg);
  mcache_windows_.front().emplace_back(msg.topic, id);

  if (const auto hit = handlers_.find(msg.topic); hit != handlers_.end()) {
    ++stats_.delivered;
    hit->second(msg);
  }
  relay(msg, id, from);
}

void GossipSubRouter::flush_topic_validation(const std::string& topic) {
  const auto pit = pending_validation_.find(topic);
  if (pit == pending_validation_.end() || pit->second.empty()) return;
  std::vector<BufferedPublish> batch = std::move(pit->second);
  pit->second = {};

  ++stats_.validation_windows_flushed;
  const auto vit = validators_.find(topic);
  if (vit == validators_.end()) {
    // Validator removed while messages were buffered: treat as unvalidated.
    for (const BufferedPublish& buffered : batch) {
      dispatch_validated(buffered.from, buffered.msg, buffered.id,
                         ValidationResult::kAccept);
    }
    return;
  }
  std::vector<IncomingMessage> views;
  views.reserve(batch.size());
  for (const BufferedPublish& buffered : batch) {
    views.push_back(
        IncomingMessage{buffered.from, buffered.received_at, buffered.msg});
  }
  const std::vector<ValidationResult> results = vit->second.batch(views);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    dispatch_validated(batch[i].from, batch[i].msg, batch[i].id,
                       i < results.size() ? results[i]
                                          : ValidationResult::kIgnore);
  }
}

void GossipSubRouter::flush_pending_validation() {
  // Snapshot the topic list: dispatching can reach user code that mutates
  // the pending map (e.g. a handler that publishes).
  std::vector<std::string> topics;
  topics.reserve(pending_validation_.size());
  for (const auto& [topic, pending] : pending_validation_) {
    if (!pending.empty()) topics.push_back(topic);
  }
  for (const std::string& topic : topics) flush_topic_validation(topic);
}

void GossipSubRouter::relay(const PubSubMessage& msg, const MessageId&,
                            NodeId except) {
  const auto it = mesh_.find(msg.topic);
  if (it == mesh_.end()) return;
  Frame frame;
  frame.type = FrameType::kPublish;
  frame.topic = msg.topic;
  frame.message = msg;
  for (const NodeId peer : it->second) {
    if (peer == except || peer == msg.origin) continue;
    send_publish_frame(peer, frame);
    ++stats_.forwarded;
  }
}

void GossipSubRouter::handle_ihave(NodeId from, const std::string& topic,
                                   const std::vector<MessageId>& ids) {
  if (scores_.below_gossip(from)) return;
  if (!handlers_.contains(topic)) return;
  std::vector<MessageId> wanted;
  for (const MessageId& id : ids) {
    if (!seen_.contains(id)) wanted.push_back(id);
  }
  if (wanted.empty()) return;
  Frame frame;
  frame.type = FrameType::kIWant;
  frame.topic = topic;
  frame.ids = std::move(wanted);
  send_frame(from, frame);
}

void GossipSubRouter::handle_iwant(NodeId from,
                                   const std::vector<MessageId>& ids) {
  if (scores_.below_gossip(from)) return;
  for (const MessageId& id : ids) {
    const auto it = mcache_.find(id);
    if (it == mcache_.end()) continue;
    Frame frame;
    frame.type = FrameType::kPublish;
    frame.topic = it->second.topic;
    frame.message = it->second;
    send_publish_frame(from, frame);
    ++stats_.iwant_served;
  }
}

void GossipSubRouter::handle_graft(NodeId from, const std::string& topic) {
  if (!handlers_.contains(topic) ||
      mesh_[topic].size() >= config_.mesh_n_high) {
    Frame prune;
    prune.type = FrameType::kPrune;
    prune.topic = topic;
    send_frame(from, prune);
    if (!handlers_.contains(topic)) {
      // A graft proves the peer believes we subscribe; if that belief
      // were current we would be subscribed. Retract (again) — grafts
      // retry every heartbeat while the peer's mesh is under its low
      // watermark, so this converges even when earlier retractions were
      // lost on a lossy link.
      Frame retract;
      retract.type = FrameType::kUnsubscribe;
      retract.topic = topic;
      send_frame(from, retract);
    }
    return;
  }
  mesh_[topic].insert(from);
}

void GossipSubRouter::handle_prune(NodeId from, const std::string& topic) {
  if (const auto it = mesh_.find(topic); it != mesh_.end()) {
    it->second.erase(from);
  }
}

std::vector<NodeId> GossipSubRouter::mesh_peers(
    const std::string& topic) const {
  const auto it = mesh_.find(topic);
  if (it == mesh_.end()) return {};
  return std::vector<NodeId>(it->second.begin(), it->second.end());
}

void GossipSubRouter::heartbeat() {
  // Validation windows never outlive a heartbeat (bounded latency).
  flush_pending_validation();

  // Subscription upkeep: announce our topics to neighbors that have not
  // heard them yet, and retract topics a neighbor still believes we
  // subscribe but we no longer do. subscribe()/unsubscribe() only reach
  // the links that existed at that moment; topology grown afterwards
  // (sharded deployments stitching per-shard rings, restarts,
  // operator-added links, peers that were partitioned during a reshard's
  // drop-old) converges here, within one heartbeat of the link
  // appearing. Without the retraction a late-joined peer keeps grafting
  // the dead topic's mesh and fanout-publishing into a void.
  for (const NodeId peer : network_.neighbors(id_)) {
    auto& told = announced_[peer];
    for (const auto& [topic, handler] : handlers_) {
      if (told.contains(topic)) continue;
      Frame frame;
      frame.type = FrameType::kSubscribe;
      frame.topic = topic;
      send_frame(peer, frame);
      told.insert(topic);
    }
    for (auto it = told.begin(); it != told.end();) {
      if (handlers_.contains(*it)) {
        ++it;
        continue;
      }
      Frame frame;
      frame.type = FrameType::kUnsubscribe;
      frame.topic = *it;
      send_frame(peer, frame);
      it = told.erase(it);
    }
  }

  // Score upkeep.
  for (const auto& [topic, peers] : mesh_) {
    for (const NodeId peer : peers) scores_.record_mesh_tick(peer);
  }
  scores_.decay_all();

  // Mesh maintenance per subscribed topic.
  for (const auto& [topic, handler] : handlers_) {
    auto& mesh = mesh_[topic];

    // Drop graylisted or disconnected peers.
    for (auto it = mesh.begin(); it != mesh.end();) {
      if (scores_.graylisted(*it) || !network_.connected(id_, *it)) {
        it = mesh.erase(it);
      } else {
        ++it;
      }
    }

    if (mesh.size() < config_.mesh_n_low) {
      auto candidates = topic_peers(topic);
      std::erase_if(candidates, [&](NodeId p) {
        return mesh.contains(p) || scores_.graylisted(p);
      });
      std::shuffle(candidates.begin(), candidates.end(), rng_);
      while (mesh.size() < config_.mesh_n && !candidates.empty()) {
        const NodeId peer = candidates.back();
        candidates.pop_back();
        mesh.insert(peer);
        Frame graft;
        graft.type = FrameType::kGraft;
        graft.topic = topic;
        send_frame(peer, graft);
      }
    } else if (mesh.size() > config_.mesh_n_high) {
      std::vector<NodeId> members(mesh.begin(), mesh.end());
      std::shuffle(members.begin(), members.end(), rng_);
      while (mesh.size() > config_.mesh_n && !members.empty()) {
        const NodeId peer = members.back();
        members.pop_back();
        mesh.erase(peer);
        Frame prune;
        prune.type = FrameType::kPrune;
        prune.topic = topic;
        send_frame(peer, prune);
      }
    }

    // Lazy gossip: IHAVE recent ids to non-mesh topic peers.
    std::vector<MessageId> recent;
    std::size_t windows = 0;
    for (const auto& window : mcache_windows_) {
      if (windows++ >= config_.history_gossip) break;
      for (const auto& [wtopic, id] : window) {
        if (wtopic == topic) recent.push_back(id);
      }
    }
    if (!recent.empty()) {
      auto gossip_to = topic_peers(topic);
      std::erase_if(gossip_to, [&](NodeId p) {
        return mesh.contains(p) || scores_.below_gossip(p);
      });
      std::shuffle(gossip_to.begin(), gossip_to.end(), rng_);
      if (gossip_to.size() > config_.gossip_degree) {
        gossip_to.resize(config_.gossip_degree);
      }
      for (const NodeId peer : gossip_to) {
        Frame ihave;
        ihave.type = FrameType::kIHave;
        ihave.topic = topic;
        ihave.ids = recent;
        send_frame(peer, ihave);
        ++stats_.ihave_sent;
      }
    }
  }

  // Shift the message-cache window and expire old entries.
  mcache_windows_.emplace_front();
  while (mcache_windows_.size() > config_.history_length) {
    for (const auto& [topic, id] : mcache_windows_.back()) {
      mcache_.erase(id);
    }
    mcache_windows_.pop_back();
  }

  // TTL-prune the dedup cache.
  const TimeMs now = network_.sim().now();
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (now - it->second > config_.seen_ttl_ms) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }

  // Drop announcement bookkeeping for peers that left the network for
  // good (ids are never reused) — unsubscribe() deliberately retains
  // entries for unreachable peers, which must not become a leak across
  // long-lived churn.
  for (auto it = announced_.begin(); it != announced_.end();) {
    if (!network_.node_alive(it->first)) {
      it = announced_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace waku::gossipsub
