// Shared gossipsub types: configuration (libp2p GossipSub v1.1 defaults),
// pubsub messages, message ids, and validation results. WAKU-RELAY is a
// thin layer over this router (paper §I), and the peer-scoring baseline
// the paper critiques lives in peer_score.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/network.hpp"

namespace waku::gossipsub {

using net::NodeId;
using net::TimeMs;

/// Message identifier: hash of (topic, origin, sequence number).
using MessageId = std::array<std::uint8_t, 32>;

struct MessageIdHash {
  std::size_t operator()(const MessageId& id) const noexcept {
    std::uint64_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | id[static_cast<std::size_t>(i)];
    return static_cast<std::size_t>(h);
  }
};

/// A pubsub message in flight.
struct PubSubMessage {
  std::string topic;
  Bytes data;
  NodeId origin = 0;
  std::uint64_t seqno = 0;

  [[nodiscard]] MessageId id() const;
};

/// Outcome of topic validation (the hook WAKU-RLN-RELAY plugs into).
enum class ValidationResult {
  kAccept,  ///< deliver and relay
  kIgnore,  ///< drop silently (e.g. duplicate / stale epoch)
  kReject,  ///< drop and penalize the sender (invalid proof, spam)
};

/// Validator callback: (sender, message) -> result.
using Validator =
    std::function<ValidationResult(NodeId from, const PubSubMessage&)>;

/// A received publish as a batch validator sees it. A non-owning view:
/// `msg` references the in-flight frame (inline validation) or the
/// router's pending buffer (batched validation) for the duration of the
/// validator call only. `received_at` is the local arrival time — epoch
/// checks must use it, not the flush time, or messages near the gap
/// boundary would expire while buffered.
struct IncomingMessage {
  NodeId from;
  TimeMs received_at;
  const PubSubMessage& msg;
};

/// Batch validator callback: one result per input, same order. The single
/// message Validator is adapted onto this internally, so a batch validator
/// is the router's one validation entry point.
using BatchValidator =
    std::function<std::vector<ValidationResult>(
        std::span<const IncomingMessage>)>;

/// Local delivery callback for subscribed topics.
using DeliveryHandler = std::function<void(const PubSubMessage&)>;

struct GossipSubConfig {
  // Mesh degree bounds (libp2p defaults).
  std::size_t mesh_n = 6;        ///< D
  std::size_t mesh_n_low = 4;    ///< D_lo
  std::size_t mesh_n_high = 12;  ///< D_hi
  std::size_t gossip_degree = 6; ///< IHAVE fanout per heartbeat

  TimeMs heartbeat_interval_ms = 1000;
  std::size_t history_length = 5;  ///< mcache windows kept
  std::size_t history_gossip = 3;  ///< windows advertised in IHAVE
  TimeMs seen_ttl_ms = 120'000;    ///< dedup cache retention

  bool flood_publish = true;  ///< publish to all subscribed neighbors

  /// Validation batching: buffer up to this many received publishes per
  /// topic and validate them in one BatchValidator call. Buffers flush
  /// when full and on every heartbeat (bounded added latency). 1 =
  /// validate inline on arrival (the historical behavior, the default).
  std::size_t validation_batch_max = 1;
};

}  // namespace waku::gossipsub
