// Gossipsub wire frames: PUBLISH carries full messages; IHAVE/IWANT carry
// gossip metadata; GRAFT/PRUNE maintain meshes; SUBSCRIBE/UNSUBSCRIBE
// announce topic interest. Frames are length-delimited binary via serde.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gossipsub/types.hpp"

namespace waku::gossipsub {

enum class FrameType : std::uint8_t {
  kPublish = 1,
  kIHave = 2,
  kIWant = 3,
  kGraft = 4,
  kPrune = 5,
  kSubscribe = 6,
  kUnsubscribe = 7,
};

struct Frame {
  FrameType type = FrameType::kPublish;
  std::string topic;                 // publish/ihave/graft/prune/sub/unsub
  std::optional<PubSubMessage> message;  // publish
  std::vector<MessageId> ids;        // ihave/iwant
};

/// Serializes a frame for Network::send.
Bytes encode_frame(const Frame& frame);

/// Parses a frame; throws std::out_of_range / std::invalid_argument on
/// malformed input (callers treat that as a misbehaving peer).
Frame decode_frame(BytesView bytes);

}  // namespace waku::gossipsub
