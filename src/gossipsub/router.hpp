// GossipSub v1.1-style router (paper [2]): mesh overlay per topic, eager
// push within the mesh, lazy IHAVE/IWANT gossip outside it, heartbeat mesh
// maintenance, and score-gated interactions. One router instance per
// simulated node; frames travel over net::Network links.
#pragma once

#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "gossipsub/peer_score.hpp"
#include "gossipsub/types.hpp"
#include "gossipsub/wire.hpp"

namespace waku::gossipsub {

/// Per-router counters consumed by the spam experiments.
struct RouterStats {
  std::uint64_t delivered = 0;        ///< unique valid messages delivered
  std::uint64_t duplicates = 0;       ///< already-seen publishes received
  std::uint64_t rejected = 0;         ///< validation -> kReject
  std::uint64_t ignored = 0;          ///< validation -> kIgnore
  std::uint64_t forwarded = 0;        ///< publishes relayed onward
  std::uint64_t ihave_sent = 0;
  std::uint64_t iwant_served = 0;
  /// Batched-validation windows handed to a validator (observability:
  /// window count vs delivered/rejected gives mean window size).
  std::uint64_t validation_windows_flushed = 0;
};

class GossipSubRouter : public net::NetNode {
 public:
  /// Registers itself with `network`; the router's NodeId is node_id().
  GossipSubRouter(net::Network& network, GossipSubConfig config = {},
                  PeerScoreConfig score_config = {},
                  std::uint64_t seed = 1);

  GossipSubRouter(const GossipSubRouter&) = delete;
  GossipSubRouter& operator=(const GossipSubRouter&) = delete;

  /// Begins heartbeating; call after the topology is wired.
  void start();

  /// Cancels the heartbeat (node shutdown). Safe to call when not started.
  void stop();

  /// Subscribes to `topic`; `handler` fires for each delivered message.
  void subscribe(const std::string& topic, DeliveryHandler handler);
  void unsubscribe(const std::string& topic);

  /// Installs the validation hook for `topic` (the RLN/PoW plug point).
  /// Adapted onto the batch hook below, so batching config applies.
  void set_validator(const std::string& topic, Validator validator);

  /// Installs the batched validation hook for `topic` — the router's one
  /// validation entry point. With validation_batch_max > 1, received
  /// publishes are buffered and validated in windows (flushed when the
  /// window fills and on every heartbeat); otherwise each message is
  /// validated inline as a window of one.
  void set_batch_validator(const std::string& topic, BatchValidator validator);

  /// Validates and dispatches any buffered publishes for all topics now.
  void flush_pending_validation();

  /// Hop-direction observability hook (cross-node propagation tracing):
  /// fires with kind "fwd" for every outbound publish frame (peer = the
  /// target: eager push, fanout, relay, or IWANT serve) and kind "dup"
  /// for every duplicate publish received (peer = the sender — the only
  /// layer that sees duplicates; they are dropped before validation).
  /// Near-free when unset: one branch per send.
  using TraceHook =
      std::function<void(const char* kind, NodeId peer, const PubSubMessage&)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  /// Publishes data under `topic`; returns the message id.
  MessageId publish(const std::string& topic, Bytes data);

  /// Targeted publish: sends the message ONLY to the given peers (no local
  /// delivery, no mesh flood). This is an attacker capability — the
  /// split-equivocation adversary uses it to show conflicting shares to
  /// disjoint mesh neighbors — and a testing tool; honest publishers use
  /// publish().
  MessageId publish_to(const std::string& topic, Bytes data,
                       std::span<const NodeId> peers);

  // net::NetNode
  void on_message(NodeId from, BytesView payload) override;

  // Introspection for tests and benches.
  [[nodiscard]] NodeId node_id() const { return id_; }
  [[nodiscard]] bool subscribed(const std::string& topic) const {
    return handlers_.contains(topic);
  }
  /// What this router believes about a PEER's subscription — the state
  /// heartbeat (un)subscribe re-announcement converges; tests assert a
  /// late-relinked peer forgets topics we left while it was away.
  [[nodiscard]] bool peer_subscribed(NodeId peer,
                                     const std::string& topic) const {
    const auto it = peer_topics_.find(peer);
    return it != peer_topics_.end() && it->second.contains(topic);
  }
  [[nodiscard]] std::vector<NodeId> mesh_peers(const std::string& topic) const;
  [[nodiscard]] const RouterStats& stats() const { return stats_; }
  /// Publishes currently buffered awaiting batched validation, summed
  /// over topics (observability: in-node backlog gauge).
  [[nodiscard]] std::size_t pending_validation_total() const {
    std::size_t total = 0;
    for (const auto& [topic, pending] : pending_validation_) {
      total += pending.size();
    }
    return total;
  }
  [[nodiscard]] PeerScore& scores() { return scores_; }
  [[nodiscard]] const PeerScore& scores() const { return scores_; }
  [[nodiscard]] bool has_seen(const MessageId& id) const {
    return seen_.contains(id);
  }

 private:
  void heartbeat();
  void handle_publish(NodeId from, const PubSubMessage& msg);
  void flush_topic_validation(const std::string& topic);
  /// Applies one validation result: deliver + relay, or penalize/drop.
  void dispatch_validated(NodeId from, const PubSubMessage& msg,
                          const MessageId& id, ValidationResult result);
  void handle_ihave(NodeId from, const std::string& topic,
                    const std::vector<MessageId>& ids);
  void handle_iwant(NodeId from, const std::vector<MessageId>& ids);
  void handle_graft(NodeId from, const std::string& topic);
  void handle_prune(NodeId from, const std::string& topic);
  void send_frame(NodeId to, const Frame& frame);
  /// send_frame for publish frames: also fires the trace hook ("fwd").
  void send_publish_frame(NodeId to, const Frame& frame);
  void relay(const PubSubMessage& msg, const MessageId& id, NodeId except);
  std::vector<NodeId> topic_peers(const std::string& topic) const;

  net::Network& network_;
  GossipSubConfig config_;
  NodeId id_;
  Rng rng_;
  std::uint64_t seqno_ = 0;
  net::Simulator::TaskId heartbeat_task_ = 0;  // 0 = not started

  std::unordered_map<std::string, DeliveryHandler> handlers_;
  // Per-topic validation hooks. `batch` is the one entry point; `single`
  // is kept (when installed via set_validator) as a zero-allocation fast
  // path for unbatched inline validation.
  struct TopicValidator {
    Validator single;  ///< may be null (batch-only installation)
    BatchValidator batch;
  };
  std::unordered_map<std::string, TopicValidator> validators_;
  // A publish buffered for batched validation. Owns its message copy (the
  // wire frame is gone by flush time); the id is kept so it is hashed
  // once per message, at arrival.
  struct BufferedPublish {
    NodeId from;
    TimeMs received_at;
    MessageId id;
    PubSubMessage msg;
  };
  // Publishes awaiting batched validation, per topic (see
  // GossipSubConfig::validation_batch_max).
  std::unordered_map<std::string, std::vector<BufferedPublish>>
      pending_validation_;
  std::unordered_map<NodeId, std::set<std::string>> peer_topics_;
  /// Topics each neighbor has been sent a kSubscribe for — the heartbeat
  /// announces our subscriptions to links that appeared after subscribe()
  /// (late-joined peers, post-start topology growth).
  std::unordered_map<NodeId, std::set<std::string>> announced_;
  std::unordered_map<std::string, std::set<NodeId>> mesh_;

  // Dedup cache with insertion timestamps (TTL-pruned on heartbeat).
  std::unordered_map<MessageId, TimeMs, MessageIdHash> seen_;

  // Message cache: windowed ids for gossip + payload store for IWANT.
  std::deque<std::vector<std::pair<std::string, MessageId>>> mcache_windows_;
  std::unordered_map<MessageId, PubSubMessage, MessageIdHash> mcache_;

  PeerScore scores_;
  RouterStats stats_;
  TraceHook trace_hook_;
};

}  // namespace waku::gossipsub
