#include "gossipsub/wire.hpp"

#include <stdexcept>

#include "common/serde.hpp"
#include "hash/sha256.hpp"

namespace waku::gossipsub {

MessageId PubSubMessage::id() const {
  ByteWriter w;
  w.write_string(topic);
  w.write_u32(origin);
  w.write_u64(seqno);
  w.write_bytes(data);
  const hash::Sha256Digest d = hash::sha256(w.data());
  MessageId id;
  std::copy(d.begin(), d.end(), id.begin());
  return id;
}

Bytes encode_frame(const Frame& frame) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(frame.type));
  w.write_string(frame.topic);
  switch (frame.type) {
    case FrameType::kPublish: {
      if (!frame.message.has_value()) {
        throw std::invalid_argument("encode_frame: publish without message");
      }
      const PubSubMessage& m = *frame.message;
      w.write_u32(m.origin);
      w.write_u64(m.seqno);
      w.write_bytes(m.data);
      break;
    }
    case FrameType::kIHave:
    case FrameType::kIWant: {
      w.write_u32(static_cast<std::uint32_t>(frame.ids.size()));
      for (const MessageId& id : frame.ids) {
        w.write_raw(BytesView(id.data(), id.size()));
      }
      break;
    }
    case FrameType::kGraft:
    case FrameType::kPrune:
    case FrameType::kSubscribe:
    case FrameType::kUnsubscribe:
      break;
  }
  return std::move(w).take();
}

Frame decode_frame(BytesView bytes) {
  ByteReader r(bytes);
  Frame frame;
  const std::uint8_t type = r.read_u8();
  if (type < 1 || type > 7) {
    throw std::invalid_argument("decode_frame: unknown frame type");
  }
  frame.type = static_cast<FrameType>(type);
  frame.topic = r.read_string();
  switch (frame.type) {
    case FrameType::kPublish: {
      PubSubMessage m;
      m.topic = frame.topic;
      m.origin = r.read_u32();
      m.seqno = r.read_u64();
      m.data = r.read_bytes();
      frame.message = std::move(m);
      break;
    }
    case FrameType::kIHave:
    case FrameType::kIWant: {
      const std::uint32_t n = r.read_u32();
      if (n > 10'000) {
        throw std::invalid_argument("decode_frame: id list too long");
      }
      frame.ids.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const Bytes raw = r.read_raw(32);
        MessageId id;
        std::copy(raw.begin(), raw.end(), id.begin());
        frame.ids.push_back(id);
      }
      break;
    }
    default:
      break;
  }
  return frame;
}

}  // namespace waku::gossipsub
