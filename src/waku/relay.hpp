// WAKU-RELAY (11/WAKU2-RELAY): "a thin layer over the libp2p GossipSub
// routing protocol" (paper §I). It moves WakuMessages instead of raw
// bytes and exposes the validation hook WAKU-RLN-RELAY plugs its spam
// check into.
//
// A relay instance speaks one *default* pubsub topic (the historical
// single-topic shape) but can subscribe, validate, and publish on any
// number of additional topics — the sharded relay (src/shard) runs one
// gossipsub mesh per shard by qualifying the topic per shard, all through
// the single underlying router.
#pragma once

#include <functional>
#include <string>

#include "gossipsub/router.hpp"
#include "waku/message.hpp"

namespace waku {

/// Default pubsub topic of Waku v2.
inline const std::string kDefaultPubsubTopic = "/waku/2/default-waku/proto";

class WakuRelay {
 public:
  using MessageHandler = std::function<void(const WakuMessage&)>;
  /// Validator over the decoded WakuMessage; plugs into gossipsub.
  using MessageValidator = std::function<gossipsub::ValidationResult(
      net::NodeId from, const WakuMessage&)>;
  /// Batch validator over decoded WakuMessages: one result per message,
  /// same order. `from[i]` sent `messages[i]`, which arrived at local time
  /// `received_at[i]` (epoch checks must use arrival time, not flush time).
  using BatchMessageValidator =
      std::function<std::vector<gossipsub::ValidationResult>(
          const std::vector<net::NodeId>& from,
          const std::vector<net::TimeMs>& received_at,
          const std::vector<WakuMessage>& messages)>;

  WakuRelay(net::Network& network, gossipsub::GossipSubConfig config = {},
            gossipsub::PeerScoreConfig score_config = {},
            std::uint64_t seed = 1,
            std::string pubsub_topic = kDefaultPubsubTopic);

  /// Starts heartbeating (call after wiring the topology).
  void start() { router_.start(); }

  /// Stops heartbeating (node shutdown / simulated crash).
  void stop() { router_.stop(); }

  /// Subscribes to the default relay topic.
  void subscribe(MessageHandler handler) {
    subscribe_topic(topic_, std::move(handler));
  }
  /// Subscribes to an explicit pubsub topic (shard-qualified topics).
  void subscribe_topic(const std::string& pubsub_topic,
                       MessageHandler handler);

  /// Installs the message validator on the default topic (e.g. the PoW
  /// check). A convenience adapter over the batch hook — batching config
  /// still applies.
  void set_validator(MessageValidator validator);

  /// Installs the batched message validator (the RLN validation pipeline)
  /// on the default topic. Malformed envelopes are rejected before the
  /// validator sees them.
  void set_batch_validator(BatchMessageValidator validator) {
    set_batch_validator_topic(topic_, std::move(validator));
  }
  /// Same, on an explicit pubsub topic — the sharded relay installs one
  /// per subscribed shard, so each shard buffers and flushes its own
  /// validation windows.
  void set_batch_validator_topic(const std::string& pubsub_topic,
                                 BatchMessageValidator validator);

  /// Publishes a message on the default topic; returns its gossipsub id.
  gossipsub::MessageId publish(const WakuMessage& message) {
    return publish_on(topic_, message);
  }
  /// Publishes on an explicit pubsub topic (the shard the message's
  /// content topic maps to).
  gossipsub::MessageId publish_on(const std::string& pubsub_topic,
                                  const WakuMessage& message);

  /// Targeted publish to a chosen peer set only (no local delivery, no
  /// flood) — the attacker capability behind the split-equivocation
  /// adversary. See GossipSubRouter::publish_to.
  gossipsub::MessageId publish_to(const WakuMessage& message,
                                  std::span<const net::NodeId> peers) {
    return publish_to_on(topic_, message, peers);
  }
  gossipsub::MessageId publish_to_on(const std::string& pubsub_topic,
                                     const WakuMessage& message,
                                     std::span<const net::NodeId> peers);

  [[nodiscard]] net::NodeId node_id() const { return router_.node_id(); }
  [[nodiscard]] const std::string& pubsub_topic() const { return topic_; }
  [[nodiscard]] gossipsub::GossipSubRouter& router() { return router_; }
  [[nodiscard]] const gossipsub::GossipSubRouter& router() const {
    return router_;
  }
  [[nodiscard]] const gossipsub::RouterStats& stats() const {
    return router_.stats();
  }

 private:
  std::string topic_;
  gossipsub::GossipSubRouter router_;
};

}  // namespace waku
