// WAKU-RELAY (11/WAKU2-RELAY): "a thin layer over the libp2p GossipSub
// routing protocol" (paper §I). It fixes a pubsub topic, moves WakuMessages
// instead of raw bytes, and exposes the validation hook WAKU-RLN-RELAY
// plugs its spam check into.
#pragma once

#include <functional>
#include <string>

#include "gossipsub/router.hpp"
#include "waku/message.hpp"

namespace waku {

/// Default pubsub topic of Waku v2.
inline const std::string kDefaultPubsubTopic = "/waku/2/default-waku/proto";

class WakuRelay {
 public:
  using MessageHandler = std::function<void(const WakuMessage&)>;
  /// Validator over the decoded WakuMessage; plugs into gossipsub.
  using MessageValidator = std::function<gossipsub::ValidationResult(
      net::NodeId from, const WakuMessage&)>;
  /// Batch validator over decoded WakuMessages: one result per message,
  /// same order. `from[i]` sent `messages[i]`, which arrived at local time
  /// `received_at[i]` (epoch checks must use arrival time, not flush time).
  using BatchMessageValidator =
      std::function<std::vector<gossipsub::ValidationResult>(
          const std::vector<net::NodeId>& from,
          const std::vector<net::TimeMs>& received_at,
          const std::vector<WakuMessage>& messages)>;

  WakuRelay(net::Network& network, gossipsub::GossipSubConfig config = {},
            gossipsub::PeerScoreConfig score_config = {},
            std::uint64_t seed = 1,
            std::string pubsub_topic = kDefaultPubsubTopic);

  /// Starts heartbeating (call after wiring the topology).
  void start() { router_.start(); }

  /// Stops heartbeating (node shutdown / simulated crash).
  void stop() { router_.stop(); }

  /// Subscribes to the relay topic.
  void subscribe(MessageHandler handler);

  /// Installs the message validator (e.g. the PoW check). A convenience
  /// adapter over set_batch_validator — batching config still applies.
  void set_validator(MessageValidator validator);

  /// Installs the batched message validator (the RLN validation pipeline).
  /// Malformed envelopes are rejected before the validator sees them.
  void set_batch_validator(BatchMessageValidator validator);

  /// Publishes a message; returns its gossipsub id.
  gossipsub::MessageId publish(const WakuMessage& message);

  /// Targeted publish to a chosen peer set only (no local delivery, no
  /// flood) — the attacker capability behind the split-equivocation
  /// adversary. See GossipSubRouter::publish_to.
  gossipsub::MessageId publish_to(const WakuMessage& message,
                                  std::span<const net::NodeId> peers);

  [[nodiscard]] net::NodeId node_id() const { return router_.node_id(); }
  [[nodiscard]] const std::string& pubsub_topic() const { return topic_; }
  [[nodiscard]] gossipsub::GossipSubRouter& router() { return router_; }
  [[nodiscard]] const gossipsub::RouterStats& stats() const {
    return router_.stats();
  }

 private:
  std::string topic_;
  gossipsub::GossipSubRouter router_;
};

}  // namespace waku
