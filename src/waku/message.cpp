#include "waku/message.hpp"

#include "common/serde.hpp"

namespace waku {

Bytes WakuMessage::serialize() const {
  ByteWriter w;
  w.write_bytes(payload);
  w.write_string(content_topic);
  w.write_u32(version);
  w.write_u64(timestamp_ms);
  w.write_u8(rate_limit_proof.has_value() ? 1 : 0);
  if (rate_limit_proof.has_value()) {
    w.write_bytes(*rate_limit_proof);
  }
  return std::move(w).take();
}

WakuMessage WakuMessage::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  WakuMessage m;
  m.payload = r.read_bytes();
  m.content_topic = r.read_string();
  m.version = r.read_u32();
  m.timestamp_ms = r.read_u64();
  if (r.read_u8() != 0) {
    m.rate_limit_proof = r.read_bytes();
  }
  return m;
}

Bytes WakuMessage::signal_bytes() const {
  ByteWriter w;
  w.write_bytes(payload);
  w.write_string(content_topic);
  return std::move(w).take();
}

std::uint64_t trace_key(const WakuMessage& msg) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::uint8_t b) {
    h = (h ^ b) * 0x100000001b3ULL;
  };
  for (const std::uint8_t b : msg.payload) mix(b);
  for (const char c : msg.content_topic) mix(static_cast<std::uint8_t>(c));
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<std::uint8_t>(msg.timestamp_ms >> (8 * i)));
  }
  return h;
}

}  // namespace waku
