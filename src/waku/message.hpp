// WakuMessage (14/WAKU2-MESSAGE): the payload unit carried by WAKU-RELAY.
// The rate_limit_proof field is the RLN extension: it carries the proof
// bundle (m, (x,y), phi, epoch, tau, pi) of paper §III-E.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace waku {

struct WakuMessage {
  Bytes payload;
  std::string content_topic = "/waku/2/default-content/proto";
  std::uint32_t version = 2;
  std::uint64_t timestamp_ms = 0;  ///< sender clock (Unix ms)
  /// Serialized rln::RateLimitProof when RLN is enabled; absent otherwise.
  std::optional<Bytes> rate_limit_proof;

  [[nodiscard]] Bytes serialize() const;
  static WakuMessage deserialize(BytesView bytes);

  /// Bytes signed by the proof: payload + content topic (the "m" whose
  /// hash forms the Shamir x-coordinate).
  [[nodiscard]] Bytes signal_bytes() const;

  friend bool operator==(const WakuMessage&, const WakuMessage&) = default;
};

/// Cheap content-derived 64-bit key (FNV-1a over payload, content topic,
/// and sender timestamp — NOT the Poseidon message hash, which costs a
/// field-arithmetic circuit evaluation). Every node derives the same key
/// for the same message, which is what lets the trace sampler
/// (obs/trace.hpp) make a network-wide-consistent 1-in-N decision with no
/// wire-format change. Collisions merely merge two traces; nothing
/// security-relevant reads this.
[[nodiscard]] std::uint64_t trace_key(const WakuMessage& msg);

}  // namespace waku
