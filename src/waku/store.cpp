#include "waku/store.hpp"

namespace waku {

void WakuStore::archive(const WakuMessage& message,
                        std::uint64_t received_at_ms) {
  bytes_ += message.payload.size();
  entries_.push_back(Entry{message, received_at_ms});
  if (entries_.size() > max_messages_) {
    bytes_ -= entries_.front().message.payload.size();
    entries_.erase(entries_.begin());
    ++evicted_;
  }
}

HistoryResponse WakuStore::query(const HistoryQuery& q) const {
  HistoryResponse resp;
  // Cursors are absolute archive positions so pagination survives eviction.
  std::size_t i = q.cursor > evicted_ ? q.cursor - evicted_ : 0;
  for (; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.received_at_ms < q.start_time_ms) continue;
    if (e.received_at_ms > q.end_time_ms) continue;
    if (q.content_topic.has_value() &&
        e.message.content_topic != *q.content_topic) {
      continue;
    }
    if (resp.messages.size() == q.page_size) {
      resp.next_cursor = evicted_ + i;
      return resp;
    }
    resp.messages.push_back(e.message);
  }
  return resp;
}

}  // namespace waku
