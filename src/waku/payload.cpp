#include "waku/payload.hpp"

#include <cstring>

#include "hash/sha256.hpp"

namespace waku {

namespace {
constexpr std::uint8_t kPayloadVersion = 1;
}  // namespace

hash::ChaChaKey derive_payload_key(std::string_view app_secret) {
  Bytes input = to_bytes("waku-payload-v1:");
  const Bytes secret = to_bytes(app_secret);
  input.insert(input.end(), secret.begin(), secret.end());
  const hash::Sha256Digest digest = hash::sha256(input);
  hash::ChaChaKey key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

Bytes seal_payload(const hash::ChaChaKey& key, BytesView plaintext, Rng& rng) {
  hash::ChaChaNonce nonce;
  const Bytes random = rng.next_bytes(nonce.size());
  std::copy(random.begin(), random.end(), nonce.begin());

  Bytes out;
  out.push_back(kPayloadVersion);
  out.insert(out.end(), nonce.begin(), nonce.end());
  const Bytes sealed = hash::aead_encrypt(key, nonce, plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<Bytes> open_payload(const hash::ChaChaKey& key,
                                  BytesView sealed) {
  if (sealed.size() < 1 + 12 + 16 || sealed[0] != kPayloadVersion) {
    return std::nullopt;
  }
  hash::ChaChaNonce nonce;
  std::memcpy(nonce.data(), sealed.data() + 1, nonce.size());
  return hash::aead_decrypt(key, nonce,
                            BytesView(sealed.data() + 13, sealed.size() - 13));
}

}  // namespace waku
