// 12/WAKU2-FILTER (paper §I): "a lightweight version of WAKU-RELAY for
// devices with limited bandwidth". A light client registers content-topic
// filters with a full node; the full node pushes only matching messages, so
// the light client never joins the gossip mesh.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <unordered_map>

#include "net/network.hpp"
#include "waku/message.hpp"

namespace waku {

/// Wire frames of the filter protocol.
enum class FilterFrameType : std::uint8_t {
  kSubscribe = 1,
  kUnsubscribe = 2,
  kPush = 3,
};

/// Full-node side: tracks light-client filters and pushes matches.
/// Wire it to a relay subscription via on_relay_message().
class FilterService : public net::NetNode {
 public:
  explicit FilterService(net::Network& network);

  /// Feed every message the full node receives from the relay.
  void on_relay_message(const WakuMessage& message);

  // net::NetNode — handles subscribe/unsubscribe frames from clients.
  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] std::size_t subscription_count() const;
  [[nodiscard]] std::uint64_t pushed_count() const { return pushed_; }

 private:
  net::Network& network_;
  net::NodeId id_;
  // client -> set of content topics
  std::unordered_map<net::NodeId, std::set<std::string>> filters_;
  std::uint64_t pushed_ = 0;
};

/// Light-client side: subscribes to content topics on a FilterService and
/// receives pushed messages without participating in relay.
class FilterClient : public net::NetNode {
 public:
  using PushHandler = std::function<void(const WakuMessage&)>;

  FilterClient(net::Network& network, PushHandler handler);

  /// Registers interest in `content_topic` with the service node.
  void subscribe(net::NodeId service, const std::string& content_topic);
  void unsubscribe(net::NodeId service, const std::string& content_topic);

  // net::NetNode — handles push frames.
  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] std::uint64_t received_count() const { return received_; }

 private:
  net::Network& network_;
  net::NodeId id_;
  PushHandler handler_;
  std::uint64_t received_ = 0;
};

}  // namespace waku
