// Waku payload encryption (the 26/WAKU2-PAYLOAD layer of the spec family
// the paper references): application payloads are sealed with
// ChaCha20-Poly1305 under a symmetric content-topic key before they enter
// the (public, relayed) WakuMessage. Routing metadata stays visible to
// relays; content does not.
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "hash/chacha20poly1305.hpp"

namespace waku {

/// Derives a symmetric key from an application secret (HKDF-lite:
/// SHA-256 over a domain tag and the secret).
hash::ChaChaKey derive_payload_key(std::string_view app_secret);

/// Seals `plaintext`: returns version(1) || nonce(12) || ct || tag(16).
/// The nonce is drawn from `rng`; never reuse an rng state across keys.
Bytes seal_payload(const hash::ChaChaKey& key, BytesView plaintext, Rng& rng);

/// Opens a sealed payload; nullopt if malformed or tampered.
std::optional<Bytes> open_payload(const hash::ChaChaKey& key, BytesView sealed);

}  // namespace waku
