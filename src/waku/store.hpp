// 13/WAKU2-STORE (paper §I): resourceful peers persist relayed messages and
// serve history to querying nodes — the off-chain storage half of the
// paper's §III-A adjustment 2 (messages live here, not in the contract).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "waku/message.hpp"

namespace waku {

/// Time/topic-filtered, cursor-paginated history query.
struct HistoryQuery {
  std::optional<std::string> content_topic;
  std::uint64_t start_time_ms = 0;
  std::uint64_t end_time_ms = UINT64_MAX;
  std::size_t page_size = 20;
  std::size_t cursor = 0;  ///< archive index to resume from
};

struct HistoryResponse {
  std::vector<WakuMessage> messages;
  std::optional<std::size_t> next_cursor;  ///< absent when exhausted
};

/// Message archive with bounded capacity (oldest evicted first).
class WakuStore {
 public:
  explicit WakuStore(std::size_t max_messages = 100'000)
      : max_messages_(max_messages) {}

  /// Archives a message at its receive time (typically wired to a relay
  /// subscription on a store-enabled node).
  void archive(const WakuMessage& message, std::uint64_t received_at_ms);

  [[nodiscard]] HistoryResponse query(const HistoryQuery& q) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t bytes_stored() const { return bytes_; }

 private:
  struct Entry {
    WakuMessage message;
    std::uint64_t received_at_ms;
  };

  std::size_t max_messages_;
  std::size_t evicted_ = 0;  ///< count of evicted entries (cursor stability)
  std::size_t bytes_ = 0;
  std::vector<Entry> entries_;  // ordered by receive time
};

}  // namespace waku
