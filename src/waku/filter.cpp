#include "waku/filter.hpp"

#include "common/serde.hpp"

namespace waku {

namespace {

Bytes encode_filter_frame(FilterFrameType type, const std::string& topic,
                          const WakuMessage* message) {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(type));
  w.write_string(topic);
  if (message != nullptr) {
    w.write_bytes(message->serialize());
  }
  return std::move(w).take();
}

}  // namespace

FilterService::FilterService(net::Network& network)
    : network_(network), id_(network.add_node(this)) {}

void FilterService::on_relay_message(const WakuMessage& message) {
  for (const auto& [client, topics] : filters_) {
    if (!topics.contains(message.content_topic)) continue;
    network_.send(id_, client,
                  encode_filter_frame(FilterFrameType::kPush,
                                      message.content_topic, &message));
    ++pushed_;
  }
}

void FilterService::on_message(net::NodeId from, BytesView payload) {
  ByteReader r(payload);
  const auto type = static_cast<FilterFrameType>(r.read_u8());
  const std::string topic = r.read_string();
  switch (type) {
    case FilterFrameType::kSubscribe:
      filters_[from].insert(topic);
      break;
    case FilterFrameType::kUnsubscribe: {
      const auto it = filters_.find(from);
      if (it != filters_.end()) {
        it->second.erase(topic);
        if (it->second.empty()) filters_.erase(it);
      }
      break;
    }
    case FilterFrameType::kPush:
      break;  // services do not accept pushes
  }
}

std::size_t FilterService::subscription_count() const {
  std::size_t n = 0;
  for (const auto& [client, topics] : filters_) n += topics.size();
  return n;
}

FilterClient::FilterClient(net::Network& network, PushHandler handler)
    : network_(network), id_(network.add_node(this)),
      handler_(std::move(handler)) {}

void FilterClient::subscribe(net::NodeId service,
                             const std::string& content_topic) {
  network_.send(id_, service,
                encode_filter_frame(FilterFrameType::kSubscribe, content_topic,
                                    nullptr));
}

void FilterClient::unsubscribe(net::NodeId service,
                               const std::string& content_topic) {
  network_.send(id_, service,
                encode_filter_frame(FilterFrameType::kUnsubscribe,
                                    content_topic, nullptr));
}

void FilterClient::on_message(net::NodeId, BytesView payload) {
  ByteReader r(payload);
  const auto type = static_cast<FilterFrameType>(r.read_u8());
  if (type != FilterFrameType::kPush) return;
  (void)r.read_string();  // content topic (redundant with the message)
  const WakuMessage message = WakuMessage::deserialize(r.read_bytes());
  ++received_;
  if (handler_) handler_(message);
}

}  // namespace waku
