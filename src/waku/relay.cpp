#include "waku/relay.hpp"

namespace waku {

WakuRelay::WakuRelay(net::Network& network, gossipsub::GossipSubConfig config,
                     gossipsub::PeerScoreConfig score_config,
                     std::uint64_t seed, std::string pubsub_topic)
    : topic_(std::move(pubsub_topic)),
      router_(network, config, score_config, seed) {}

void WakuRelay::subscribe_topic(const std::string& pubsub_topic,
                                MessageHandler handler) {
  router_.subscribe(pubsub_topic,
                    [handler = std::move(handler)](
                        const gossipsub::PubSubMessage& msg) {
                      handler(WakuMessage::deserialize(msg.data));
                    });
}

void WakuRelay::set_validator(MessageValidator validator) {
  // Installed as the router's single-message validator: unbatched inline
  // validation stays a direct, allocation-free call (the router derives
  // the batch adapter itself, so window configs still apply uniformly).
  router_.set_validator(
      topic_, [validator = std::move(validator)](
                  net::NodeId from, const gossipsub::PubSubMessage& msg)
                  -> gossipsub::ValidationResult {
        WakuMessage decoded;
        try {
          decoded = WakuMessage::deserialize(msg.data);
        } catch (const std::exception&) {
          return gossipsub::ValidationResult::kReject;  // malformed envelope
        }
        return validator(from, decoded);
      });
}

void WakuRelay::set_batch_validator_topic(const std::string& pubsub_topic,
                                          BatchMessageValidator validator) {
  router_.set_batch_validator(
      pubsub_topic,
      [validator = std::move(validator)](
          std::span<const gossipsub::IncomingMessage> batch) {
        // Decode the envelopes first; only well-formed messages reach the
        // validator, and malformed ones are rejected in place.
        std::vector<gossipsub::ValidationResult> results(
            batch.size(), gossipsub::ValidationResult::kReject);
        std::vector<net::NodeId> froms;
        std::vector<net::TimeMs> times;
        std::vector<WakuMessage> decoded;
        std::vector<std::size_t> positions;
        froms.reserve(batch.size());
        times.reserve(batch.size());
        decoded.reserve(batch.size());
        positions.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          try {
            decoded.push_back(WakuMessage::deserialize(batch[i].msg.data));
            froms.push_back(batch[i].from);
            times.push_back(batch[i].received_at);
            positions.push_back(i);
          } catch (const std::exception&) {
            // malformed envelope: stays kReject
          }
        }
        if (!decoded.empty()) {
          const std::vector<gossipsub::ValidationResult> inner =
              validator(froms, times, decoded);
          for (std::size_t k = 0; k < positions.size(); ++k) {
            results[positions[k]] = k < inner.size()
                                        ? inner[k]
                                        : gossipsub::ValidationResult::kIgnore;
          }
        }
        return results;
      });
}

gossipsub::MessageId WakuRelay::publish_on(const std::string& pubsub_topic,
                                           const WakuMessage& message) {
  return router_.publish(pubsub_topic, message.serialize());
}

gossipsub::MessageId WakuRelay::publish_to_on(
    const std::string& pubsub_topic, const WakuMessage& message,
    std::span<const net::NodeId> peers) {
  return router_.publish_to(pubsub_topic, message.serialize(), peers);
}

}  // namespace waku
