#include "waku/relay.hpp"

namespace waku {

WakuRelay::WakuRelay(net::Network& network, gossipsub::GossipSubConfig config,
                     gossipsub::PeerScoreConfig score_config,
                     std::uint64_t seed, std::string pubsub_topic)
    : topic_(std::move(pubsub_topic)),
      router_(network, config, score_config, seed) {}

void WakuRelay::subscribe(MessageHandler handler) {
  router_.subscribe(topic_,
                    [handler = std::move(handler)](
                        const gossipsub::PubSubMessage& msg) {
                      handler(WakuMessage::deserialize(msg.data));
                    });
}

void WakuRelay::set_validator(MessageValidator validator) {
  router_.set_validator(
      topic_, [validator = std::move(validator)](
                  net::NodeId from, const gossipsub::PubSubMessage& msg)
                  -> gossipsub::ValidationResult {
        WakuMessage decoded;
        try {
          decoded = WakuMessage::deserialize(msg.data);
        } catch (const std::exception&) {
          return gossipsub::ValidationResult::kReject;  // malformed envelope
        }
        return validator(from, decoded);
      });
}

gossipsub::MessageId WakuRelay::publish(const WakuMessage& message) {
  return router_.publish(topic_, message.serialize());
}

}  // namespace waku
