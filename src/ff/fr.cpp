#include "ff/fr.hpp"

#include "common/expect.hpp"

namespace waku::ff {

namespace {

// -- Compile-time Montgomery constants ------------------------------------

// -r^{-1} mod 2^64 via Newton iteration: x_{k+1} = x_k * (2 - r*x_k).
// Six iterations double the correct low bits from 1 to 64.
constexpr std::uint64_t compute_inv() {
  const std::uint64_t r0 = Fr::kModulus.limb[0];
  std::uint64_t x = 1;
  for (int i = 0; i < 6; ++i) {
    x *= 2 - r0 * x;  // arithmetic is mod 2^64 by construction
  }
  return ~x + 1;  // negate
}

// 2^256 mod r, by doubling 1 modulo r 256 times.
constexpr U256 compute_r() {
  U256 x{1};
  for (int i = 0; i < 256; ++i) x = double_mod(x, Fr::kModulus);
  return x;
}

// 2^512 mod r.
constexpr U256 compute_r2() {
  U256 x = compute_r();
  for (int i = 0; i < 256; ++i) x = double_mod(x, Fr::kModulus);
  return x;
}

constexpr std::uint64_t kInv = compute_inv();
constexpr U256 kR = compute_r();
constexpr U256 kR2 = compute_r2();

static_assert(Fr::kModulus.limb[0] * compute_inv() == 0xffffffffffffffffULL,
              "Montgomery INV constant must satisfy r*(-r^-1) == -1 mod 2^64");

// -- Montgomery CIOS multiplication ----------------------------------------

// t = a*b*2^{-256} mod r. Textbook CIOS with a 6-limb accumulator.
U256 mont_mul(const U256& a, const U256& b) {
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    // t += a * b[i]
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(t[j]) +
          static_cast<unsigned __int128>(a.limb[j]) * b.limb[i] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(t[4]) + carry;
      t[4] = static_cast<std::uint64_t>(cur);
      t[5] = static_cast<std::uint64_t>(cur >> 64);
    }
    // Reduce: add m*r where m = t[0]*inv mod 2^64, then shift one limb.
    const std::uint64_t m = t[0] * kInv;
    carry = (static_cast<unsigned __int128>(t[0]) +
             static_cast<unsigned __int128>(m) * Fr::kModulus.limb[0]) >>
            64;
    for (std::size_t j = 1; j < 4; ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(t[j]) +
          static_cast<unsigned __int128>(m) * Fr::kModulus.limb[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(t[4]) + carry;
      t[3] = static_cast<std::uint64_t>(cur);
      t[4] = t[5] + static_cast<std::uint64_t>(cur >> 64);
    }
  }
  U256 res{t[0], t[1], t[2], t[3]};
  if (t[4] != 0 || res >= Fr::kModulus) {
    bool borrow = false;
    res = sub_borrow(res, Fr::kModulus, borrow);
  }
  return res;
}

U256 add_mod(const U256& a, const U256& b) {
  bool carry = false;
  U256 r = add_carry(a, b, carry);
  if (carry || r >= Fr::kModulus) {
    bool borrow = false;
    r = sub_borrow(r, Fr::kModulus, borrow);
  }
  return r;
}

U256 sub_mod(const U256& a, const U256& b) {
  bool borrow = false;
  U256 r = sub_borrow(a, b, borrow);
  if (borrow) {
    bool carry = false;
    r = add_carry(r, Fr::kModulus, carry);
  }
  return r;
}

}  // namespace

Fr Fr::one() noexcept { return from_u64(1); }

Fr Fr::from_u64(std::uint64_t v) { return from_u256_reduce(U256{v}); }

Fr Fr::from_u256_reduce(const U256& v) {
  U256 canon = v;
  while (canon >= kModulus) {
    bool borrow = false;
    canon = sub_borrow(canon, kModulus, borrow);
  }
  Fr out;
  out.mont_ = mont_mul(canon, kR2);
  return out;
}

Fr Fr::from_u256_canonical(const U256& v) {
  WAKU_EXPECTS(v < kModulus);
  return from_u256_reduce(v);
}

Fr Fr::from_bytes_reduce(BytesView bytes) {
  WAKU_EXPECTS(bytes.size() <= 32);
  Bytes padded(32 - bytes.size(), 0);
  padded.insert(padded.end(), bytes.begin(), bytes.end());
  return from_u256_reduce(u256_from_bytes_be(padded));
}

Fr Fr::random(Rng& rng) {
  // Rejection-sample 254-bit values until one lands below r (p ~ 0.76).
  for (;;) {
    U256 v{rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()};
    v.limb[3] &= 0x3fffffffffffffffULL;  // clear top 2 bits -> 254-bit value
    if (v < kModulus) return from_u256_reduce(v);
  }
}

U256 Fr::to_u256() const { return mont_mul(mont_, U256{1}); }

Bytes Fr::to_bytes_be() const { return u256_to_bytes_be(to_u256()); }

Fr Fr::operator+(const Fr& o) const {
  Fr r;
  r.mont_ = add_mod(mont_, o.mont_);
  return r;
}

Fr Fr::operator-(const Fr& o) const {
  Fr r;
  r.mont_ = sub_mod(mont_, o.mont_);
  return r;
}

Fr Fr::operator*(const Fr& o) const {
  Fr r;
  r.mont_ = mont_mul(mont_, o.mont_);
  return r;
}

Fr Fr::neg() const {
  Fr r;
  r.mont_ = mont_.is_zero() ? U256{} : sub_mod(U256{}, mont_);
  return r;
}

Fr Fr::pow(const U256& e) const {
  Fr result = one();
  const int hb = e.highest_bit();
  for (int i = hb; i >= 0; --i) {
    result = result.square();
    if (e.bit(static_cast<unsigned>(i))) result = result * *this;
  }
  return result;
}

Fr Fr::inverse() const {
  WAKU_EXPECTS(!is_zero());
  bool borrow = false;
  const U256 e = sub_borrow(kModulus, U256{2}, borrow);  // r - 2
  return pow(e);
}

Fr fr_from_string(const std::string& s) {
  return Fr::from_u256_reduce(u256_from_string(s));
}

std::string fr_to_hex(const Fr& v) { return u256_to_hex(v.to_u256()); }

}  // namespace waku::ff
