// 256-bit unsigned integer with constexpr arithmetic.
//
// Little-endian limb order (limb[0] is least significant). This type is the
// carrier for canonical field element values, exponents, and contract
// storage words; field arithmetic itself lives in fr.hpp.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace waku::ff {

struct U256 {
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  [[nodiscard]] constexpr bool is_zero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }

  [[nodiscard]] constexpr bool bit(unsigned i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }

  /// Index of the highest set bit, or -1 for zero.
  [[nodiscard]] constexpr int highest_bit() const {
    for (int i = 3; i >= 0; --i) {
      if (limb[static_cast<std::size_t>(i)] != 0) {
        std::uint64_t v = limb[static_cast<std::size_t>(i)];
        int b = 0;
        while (v >>= 1) ++b;
        return i * 64 + b;
      }
    }
    return -1;
  }

  friend constexpr bool operator==(const U256&, const U256&) = default;

  friend constexpr std::strong_ordering operator<=>(const U256& a,
                                                    const U256& b) {
    for (int i = 3; i >= 0; --i) {
      const auto ia = static_cast<std::size_t>(i);
      if (a.limb[ia] != b.limb[ia]) {
        return a.limb[ia] < b.limb[ia] ? std::strong_ordering::less
                                       : std::strong_ordering::greater;
      }
    }
    return std::strong_ordering::equal;
  }
};

/// a + b, returning the carry-out bit.
constexpr U256 add_carry(const U256& a, const U256& b, bool& carry_out) {
  U256 r;
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    r.limb[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  carry_out = carry != 0;
  return r;
}

/// a - b, returning the borrow-out bit.
constexpr U256 sub_borrow(const U256& a, const U256& b, bool& borrow_out) {
  U256 r;
  unsigned __int128 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) -
                                b.limb[i] - borrow;
    r.limb[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;  // two's-complement wrap indicates borrow
  }
  borrow_out = borrow != 0;
  return r;
}

constexpr U256 operator+(const U256& a, const U256& b) {
  bool c = false;
  return add_carry(a, b, c);
}

constexpr U256 operator-(const U256& a, const U256& b) {
  bool br = false;
  return sub_borrow(a, b, br);
}

/// Doubling modulo `mod`; requires a < mod.
constexpr U256 double_mod(const U256& a, const U256& mod) {
  bool carry = false;
  U256 r = add_carry(a, a, carry);
  if (carry || r >= mod) {
    bool br = false;
    r = sub_borrow(r, mod, br);
  }
  return r;
}

/// (a + b) mod `mod`; requires a, b < mod.
constexpr U256 add_mod(const U256& a, const U256& b, const U256& mod) {
  bool carry = false;
  U256 r = add_carry(a, b, carry);
  if (carry || r >= mod) {
    bool br = false;
    r = sub_borrow(r, mod, br);
  }
  return r;
}

/// (a * b) mod `mod` via binary double-and-add; requires a, b < mod and a
/// non-zero modulus. O(256) add/double steps — exponent arithmetic for
/// signature schemes whose group order is not the Fr modulus (fr.hpp's
/// Montgomery pipeline is specialized to r and cannot serve here).
U256 mul_mod(const U256& a, const U256& b, const U256& mod);

/// v mod `mod` for arbitrary v (hash-to-exponent reduction). Requires
/// mod > 2^192 (true for every group order used here), which bounds the
/// correction loop to a handful of subtractions.
U256 reduce_mod(U256 v, const U256& mod);

/// Big-endian 32-byte serialization (Ethereum / zkSNARK convention).
Bytes u256_to_bytes_be(const U256& v);

/// Parses exactly 32 big-endian bytes.
U256 u256_from_bytes_be(BytesView bytes);

/// Parses a decimal or 0x-prefixed hex string; throws on malformed input.
U256 u256_from_string(const std::string& s);

/// Lowercase 0x-prefixed hex, no leading-zero trimming.
std::string u256_to_hex(const U256& v);

/// Functor so U256 can key unordered containers.
struct U256Hash {
  std::size_t operator()(const U256& v) const noexcept {
    // Limbs of field elements are already uniformly distributed; fold them.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t l : v.limb) {
      h ^= l + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace waku::ff
