#include "ff/u256.hpp"

#include <stdexcept>

#include "common/expect.hpp"

namespace waku::ff {

Bytes u256_to_bytes_be(const U256& v) {
  Bytes out(32);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t l = v.limb[3 - i];
    for (std::size_t b = 0; b < 8; ++b) {
      out[i * 8 + b] = static_cast<std::uint8_t>(l >> (56 - 8 * b));
    }
  }
  return out;
}

U256 u256_from_bytes_be(BytesView bytes) {
  WAKU_EXPECTS(bytes.size() == 32);
  U256 v;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t l = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      l = (l << 8) | bytes[i * 8 + b];
    }
    v.limb[3 - i] = l;
  }
  return v;
}

namespace {

// v * 10 + d, ignoring overflow past 256 bits (inputs are validated to fit).
U256 mul10_add(const U256& v, std::uint64_t d) {
  U256 r;
  unsigned __int128 carry = d;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 cur =
        static_cast<unsigned __int128>(v.limb[i]) * 10 + carry;
    r.limb[i] = static_cast<std::uint64_t>(cur);
    carry = cur >> 64;
  }
  if (carry != 0) throw std::overflow_error("u256_from_string: overflow");
  return r;
}

}  // namespace

U256 u256_from_string(const std::string& s) {
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    std::string hex = s.substr(2);
    if (hex.empty() || hex.size() > 64) {
      throw std::invalid_argument("u256_from_string: bad hex length");
    }
    // Left-pad to 64 nibbles then reuse byte parsing.
    hex.insert(0, 64 - hex.size(), '0');
    return u256_from_bytes_be(from_hex(hex));
  }
  if (s.empty()) throw std::invalid_argument("u256_from_string: empty");
  U256 v;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("u256_from_string: bad decimal digit");
    }
    v = mul10_add(v, static_cast<std::uint64_t>(c - '0'));
  }
  return v;
}

std::string u256_to_hex(const U256& v) { return to_hex0x(u256_to_bytes_be(v)); }

U256 mul_mod(const U256& a, const U256& b, const U256& mod) {
  WAKU_EXPECTS(!mod.is_zero() && a < mod && b < mod);
  U256 acc;  // zero
  const int top = b.highest_bit();
  for (int i = top; i >= 0; --i) {
    acc = double_mod(acc, mod);
    if (b.bit(static_cast<unsigned>(i))) acc = add_mod(acc, a, mod);
  }
  return acc;
}

U256 reduce_mod(U256 v, const U256& mod) {
  WAKU_EXPECTS(mod.highest_bit() >= 192);
  while (v >= mod) {
    bool borrow = false;
    v = sub_borrow(v, mod, borrow);
  }
  return v;
}

}  // namespace waku::ff
