// Fr: the scalar field of BN254 (a.k.a. alt_bn128), the field Semaphore/RLN
// circuits are defined over.
//
//   r = 21888242871839275222246405745257275088548364400416034343698204186575808495617
//
// Elements are kept in Montgomery form (x·2^256 mod r) so multiplication is
// a single CIOS pass. All Montgomery constants (R, R², -r⁻¹ mod 2^64) are
// computed at compile time from the modulus, which removes a whole class of
// hand-transcription bugs.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "ff/u256.hpp"

namespace waku::ff {

class Fr {
 public:
  /// The BN254 scalar field modulus r.
  static constexpr U256 kModulus{0x43e1f593f0000001ULL, 0x2833e84879b97091ULL,
                                 0xb85045b68181585dULL, 0x30644e72e131a029ULL};

  constexpr Fr() = default;

  static Fr zero() noexcept { return Fr{}; }
  static Fr one() noexcept;

  /// Lifts a machine word into the field.
  static Fr from_u64(std::uint64_t v);

  /// Reduces an arbitrary 256-bit value modulo r (used for hash-to-field).
  static Fr from_u256_reduce(const U256& v);

  /// Parses a canonical (already < r) value; throws if v >= r.
  static Fr from_u256_canonical(const U256& v);

  /// Reduces arbitrary bytes (big-endian, any length <= 32) into the field.
  static Fr from_bytes_reduce(BytesView bytes);

  /// Uniform random field element via rejection sampling on 254-bit draws.
  static Fr random(Rng& rng);

  /// Canonical value in [0, r).
  [[nodiscard]] U256 to_u256() const;

  /// Canonical 32-byte big-endian serialization.
  [[nodiscard]] Bytes to_bytes_be() const;

  [[nodiscard]] bool is_zero() const { return to_u256().is_zero(); }

  Fr operator+(const Fr& o) const;
  Fr operator-(const Fr& o) const;
  Fr operator*(const Fr& o) const;
  Fr& operator+=(const Fr& o) { return *this = *this + o; }
  Fr& operator-=(const Fr& o) { return *this = *this - o; }
  Fr& operator*=(const Fr& o) { return *this = *this * o; }
  [[nodiscard]] Fr neg() const;
  [[nodiscard]] Fr square() const { return *this * *this; }

  /// Exponentiation by a 256-bit exponent (square-and-multiply).
  [[nodiscard]] Fr pow(const U256& e) const;
  [[nodiscard]] Fr pow(std::uint64_t e) const { return pow(U256{e}); }

  /// Multiplicative inverse via Fermat's little theorem; requires non-zero.
  [[nodiscard]] Fr inverse() const;

  friend bool operator==(const Fr& a, const Fr& b) {
    return a.mont_ == b.mont_;
  }
  friend bool operator!=(const Fr& a, const Fr& b) { return !(a == b); }

  /// Raw Montgomery representation (for hashing into containers).
  [[nodiscard]] const U256& mont_repr() const { return mont_; }

 private:
  explicit constexpr Fr(const U256& mont) : mont_(mont) {}

  U256 mont_{};  // value * 2^256 mod r
};

/// Functor so Fr can key unordered containers (e.g. the nullifier log).
struct FrHash {
  std::size_t operator()(const Fr& v) const noexcept {
    return U256Hash{}(v.mont_repr());
  }
};

/// Convenience: decimal/hex string to field element (reduces mod r).
Fr fr_from_string(const std::string& s);

/// Canonical decimal-ish debug form (hex of canonical value).
std::string fr_to_hex(const Fr& v);

}  // namespace waku::ff
