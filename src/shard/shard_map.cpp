#include "shard/shard_map.hpp"

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/keccak256.hpp"

namespace waku::shard {

std::vector<ShardId> ShardConfig::subscribed_shards() const {
  if (!subscribe.empty()) return subscribe;
  std::vector<ShardId> all(num_shards);
  for (std::uint16_t s = 0; s < num_shards; ++s) all[s] = s;
  return all;
}

ShardMap::ShardMap(std::uint16_t num_shards, std::uint32_t generation)
    : num_shards_(num_shards), generation_(generation) {
  WAKU_EXPECTS(num_shards >= 1);
}

ShardId ShardMap::shard_of(std::string_view content_topic) const {
  if (num_shards_ == 1) return 0;
  ByteWriter w;
  w.write_string("waku-shard-map-v1");
  w.write_u32(generation_);
  w.write_string(content_topic);
  const hash::Keccak256Digest digest = hash::keccak256(w.data());
  // Fold the first 8 digest bytes; keccak output is uniform, and mod by a
  // small shard count keeps the assignment balanced for arbitrary topics.
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < 8; ++i) h = (h << 8) | digest[i];
  return static_cast<ShardId>(h % num_shards_);
}

std::string ShardMap::pubsub_topic(ShardId shard) const {
  WAKU_EXPECTS(shard < num_shards_);
  return "/waku/2/rs/" + std::to_string(generation_) + "/" +
         std::to_string(shard);
}

std::optional<ShardId> ShardMap::parse_pubsub_topic(
    std::string_view pubsub_topic) const {
  const std::string prefix =
      "/waku/2/rs/" + std::to_string(generation_) + "/";
  if (!pubsub_topic.starts_with(prefix)) return std::nullopt;
  const std::string_view tail = pubsub_topic.substr(prefix.size());
  if (tail.empty() || tail.size() > 5) return std::nullopt;
  std::uint32_t value = 0;
  for (const char c : tail) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value >= num_shards_) return std::nullopt;
  return static_cast<ShardId>(value);
}

std::vector<ShardId> ShardMap::all_shards() const {
  std::vector<ShardId> all(num_shards_);
  for (std::uint16_t s = 0; s < num_shards_; ++s) all[s] = s;
  return all;
}

std::string content_topic_for_shard(const ShardMap& map, ShardId shard,
                                    std::string_view prefix) {
  WAKU_EXPECTS(shard < map.num_shards());
  for (std::uint64_t n = 0;; ++n) {
    std::string topic = std::string(prefix) + std::to_string(n) + "/proto";
    if (map.shard_of(topic) == shard) return topic;
    // Uniform assignment: the expected probe count is num_shards, and the
    // loop terminates with probability 1.
  }
}

std::vector<std::string> ShardMap::moved_topics(
    const ShardMap& from, const ShardMap& to,
    std::span<const std::string> topics) {
  std::vector<std::string> moved;
  for (const std::string& topic : topics) {
    if (from.shard_of(topic) != to.shard_of(topic)) moved.push_back(topic);
  }
  return moved;
}

}  // namespace waku::shard
