#include "shard/shard_map.hpp"

#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/keccak256.hpp"

namespace waku::shard {

/// Bounded topic->shard memo. Relays resolve the same handful of live
/// content topics on every message, while the uncached walk costs one
/// keccak per split-lineage layer — so the memo turns the deepening hot
/// path back into a hash lookup. Full clear on overflow (no LRU links to
/// maintain): the working set of live topics is far below capacity, so a
/// flush is a cold-start blip, not a steady-state cost.
struct ShardMap::Memo {
  /// Heterogeneous lookup: find by string_view without materializing a
  /// std::string per message.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  static constexpr std::size_t kCapacity = 4096;

  mutable std::mutex mu;
  std::unordered_map<std::string, ShardId, Hash, std::equal_to<>> cache;
  MemoStats stats;
};

std::vector<ShardId> ShardConfig::subscribed_shards() const {
  if (!subscribe.empty()) return subscribe;
  std::vector<ShardId> all(num_shards);
  for (std::uint16_t s = 0; s < num_shards; ++s) all[s] = s;
  return all;
}

ShardMap::ShardMap(std::uint16_t num_shards, std::uint32_t generation)
    : num_shards_(num_shards),
      generation_(generation),
      memo_(std::make_shared<Memo>()) {
  WAKU_EXPECTS(num_shards >= 1);
}

namespace {

std::uint64_t topic_hash(std::uint32_t generation,
                         std::string_view content_topic) {
  ByteWriter w;
  w.write_string("waku-shard-map-v1");
  w.write_u32(generation);
  w.write_string(content_topic);
  const hash::Keccak256Digest digest = hash::keccak256(w.data());
  // Fold the first 8 digest bytes; keccak output is uniform, and mod by a
  // small shard count keeps the assignment balanced for arbitrary topics.
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < 8; ++i) h = (h << 8) | digest[i];
  return h;
}

}  // namespace

ShardId ShardMap::shard_of(std::string_view content_topic) const {
  {
    std::lock_guard lk(memo_->mu);
    const auto it = memo_->cache.find(content_topic);
    if (it != memo_->cache.end()) {
      ++memo_->stats.hits;
      return it->second;
    }
    ++memo_->stats.misses;
  }
  const ShardId shard = compute_shard_of(content_topic);
  std::lock_guard lk(memo_->mu);
  if (memo_->cache.size() >= Memo::kCapacity) {
    memo_->cache.clear();
    ++memo_->stats.flushes;
  }
  memo_->cache.emplace(std::string(content_topic), shard);
  return shard;
}

ShardMap::MemoStats ShardMap::memo_stats() const {
  std::lock_guard lk(memo_->mu);
  return memo_->stats;
}

ShardId ShardMap::compute_shard_of(std::string_view content_topic) const {
  if (parent_ != nullptr) {
    // Refinement: the old shard picks the family, this generation's hash
    // picks the slot within it — shard_of(T) % parent N == parent shard.
    const ShardId base = parent_->shard_of(content_topic);
    const std::uint16_t factor = num_shards_ / parent_->num_shards_;
    const auto sub = static_cast<std::uint16_t>(
        topic_hash(generation_, content_topic) % factor);
    return static_cast<ShardId>(base + parent_->num_shards_ * sub);
  }
  if (num_shards_ == 1) return 0;
  return static_cast<ShardId>(topic_hash(generation_, content_topic) %
                              num_shards_);
}

ShardMap ShardMap::split(std::uint16_t factor) const {
  WAKU_EXPECTS(factor >= 2);
  // The lineage is load-bearing (every layer adds one keccak per
  // shard_of) and serializes its depth as a u8; refuse silly chains
  // loudly instead of wrapping silently. Deployments that approach this
  // run a flat resharded() migration to compact the lineage (ROADMAP).
  std::size_t depth = 1;
  for (const ShardMap* m = parent_.get(); m != nullptr;
       m = m->parent_.get()) {
    ++depth;
  }
  WAKU_EXPECTS(depth < 32);
  ShardMap next(static_cast<std::uint16_t>(num_shards_ * factor),
                generation_ + 1);
  next.parent_ = std::make_shared<const ShardMap>(*this);
  return next;
}

std::string ShardMap::pubsub_topic(ShardId shard) const {
  WAKU_EXPECTS(shard < num_shards_);
  return "/waku/2/rs/" + std::to_string(generation_) + "/" +
         std::to_string(shard);
}

std::optional<ShardId> ShardMap::parse_pubsub_topic(
    std::string_view pubsub_topic) const {
  const std::string prefix =
      "/waku/2/rs/" + std::to_string(generation_) + "/";
  if (!pubsub_topic.starts_with(prefix)) return std::nullopt;
  const std::string_view tail = pubsub_topic.substr(prefix.size());
  if (tail.empty() || tail.size() > 5) return std::nullopt;
  std::uint32_t value = 0;
  for (const char c : tail) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value >= num_shards_) return std::nullopt;
  return static_cast<ShardId>(value);
}

std::vector<ShardId> ShardMap::all_shards() const {
  std::vector<ShardId> all(num_shards_);
  for (std::uint16_t s = 0; s < num_shards_; ++s) all[s] = s;
  return all;
}

std::string content_topic_for_shard(const ShardMap& map, ShardId shard,
                                    std::string_view prefix) {
  WAKU_EXPECTS(shard < map.num_shards());
  for (std::uint64_t n = 0;; ++n) {
    std::string topic = std::string(prefix) + std::to_string(n) + "/proto";
    if (map.shard_of(topic) == shard) return topic;
    // Uniform assignment: the expected probe count is num_shards, and the
    // loop terminates with probability 1.
  }
}

Bytes ShardMap::serialize() const {
  // Lineage root-first: each layer is (num_shards, generation); layer k>0
  // is a split of layer k-1.
  std::vector<const ShardMap*> chain;
  for (const ShardMap* m = this; m != nullptr; m = m->parent_.get()) {
    chain.push_back(m);
  }
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(chain.size()));
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    w.write_u16((*it)->num_shards_);
    w.write_u32((*it)->generation_);
  }
  return std::move(w).take();
}

ShardMap ShardMap::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  const std::uint8_t layers = r.read_u8();
  WAKU_EXPECTS(layers >= 1);
  const std::uint16_t base_num = r.read_u16();
  const std::uint32_t base_gen = r.read_u32();
  ShardMap map(base_num, base_gen);
  for (std::uint8_t k = 1; k < layers; ++k) {
    const std::uint16_t num = r.read_u16();
    const std::uint32_t gen = r.read_u32();
    WAKU_EXPECTS(gen == map.generation_ + 1);
    WAKU_EXPECTS(num % map.num_shards_ == 0 && num > map.num_shards_);
    map = map.split(static_cast<std::uint16_t>(num / map.num_shards_));
  }
  return map;
}

std::vector<std::string> ShardMap::moved_topics(
    const ShardMap& from, const ShardMap& to,
    std::span<const std::string> topics) {
  std::vector<std::string> moved;
  for (const std::string& topic : topics) {
    if (from.shard_of(topic) != to.shard_of(topic)) moved.push_back(topic);
  }
  return moved;
}

}  // namespace waku::shard
