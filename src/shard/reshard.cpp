#include "shard/reshard.hpp"

#include <algorithm>
#include <cstdio>

#include "common/expect.hpp"
#include "common/serde.hpp"

namespace waku::shard {

const char* reshard_phase_name(ReshardPhase phase) {
  switch (phase) {
    case ReshardPhase::kStable:
      return "stable";
    case ReshardPhase::kAnnounce:
      return "announce";
    case ReshardPhase::kOverlap:
      return "overlap";
    case ReshardPhase::kDrain:
      return "drain";
  }
  return "unknown";
}

ReshardCoordinator::ReshardCoordinator(const ShardConfig& current)
    : current_(current), current_map_(current) {}

const ShardMap& ReshardCoordinator::next_map() const {
  WAKU_EXPECTS(next_map_.has_value());
  return *next_map_;
}

const ShardConfig& ReshardCoordinator::next_config() const {
  WAKU_EXPECTS(next_.has_value());
  return *next_;
}

bool ReshardCoordinator::begin(std::uint16_t target_num_shards,
                               std::vector<ShardId> subscribe) {
  if (phase_ != ReshardPhase::kStable) return false;
  // Back-to-back reshards must wait the linger out: the domain logs are
  // keyed by the PREVIOUS generation and a second cutover would need its
  // own domain keyed by the current one.
  if (lingering()) return false;
  if (target_num_shards <= current_.num_shards ||
      target_num_shards % current_.num_shards != 0) {
    return false;
  }
  const auto factor =
      static_cast<std::uint16_t>(target_num_shards / current_.num_shards);
  for (const ShardId s : subscribe) {
    if (s >= target_num_shards) return false;
  }

  ShardConfig next;
  next.num_shards = target_num_shards;
  next.generation = current_.generation + 1;
  next.subscribe = std::move(subscribe);
  // The refinement check that makes the shared domain log enforceable:
  // every new home must sit in the family of a subscribed old home, or
  // this node would mesh a new-gen shard whose old-gen counterpart it
  // cannot see.
  const std::vector<ShardId> old_homes = current_.subscribed_shards();
  for (const ShardId s : next.subscribed_shards()) {
    const auto family =
        static_cast<ShardId>(s % current_.num_shards);
    if (std::find(old_homes.begin(), old_homes.end(), family) ==
        old_homes.end()) {
      return false;
    }
  }

  next_ = std::move(next);
  next_map_ = current_map_.split(factor);
  phase_ = ReshardPhase::kAnnounce;
  return true;
}

bool ReshardCoordinator::advance(std::uint64_t linger_until_epoch) {
  switch (phase_) {
    case ReshardPhase::kStable:
      return false;
    case ReshardPhase::kAnnounce:
      // Dual-subscribe begins: the domain logs are keyed by the layout
      // that is about to stop being the only one.
      domain_map_ = current_map_;
      phase_ = ReshardPhase::kOverlap;
      return true;
    case ReshardPhase::kOverlap:
      phase_ = ReshardPhase::kDrain;
      return true;
    case ReshardPhase::kDrain:
      // Drop-old: generation G+1 becomes the node's layout; the domain
      // state lingers until the epoch gate retires the cutover era.
      current_ = std::move(*next_);
      current_map_ = std::move(*next_map_);
      next_.reset();
      next_map_.reset();
      linger_until_epoch_ = linger_until_epoch;
      phase_ = ReshardPhase::kStable;
      return true;
  }
  return false;
}

rln::NullifierLog* ReshardCoordinator::domain_log(
    std::string_view content_topic) {
  if (!domain_map_.has_value()) return nullptr;
  return &domain_logs_[domain_map_->shard_of(content_topic)];
}

std::optional<ShardId> ReshardCoordinator::domain_of(
    std::string_view content_topic) const {
  if (!domain_map_.has_value()) return std::nullopt;
  return domain_map_->shard_of(content_topic);
}

void ReshardCoordinator::seed_domain_log(ShardId shard, BytesView log_bytes) {
  WAKU_EXPECTS(domain_map_.has_value());
  domain_logs_[shard].restore(log_bytes);
}

void ReshardCoordinator::inject_domain_observation(
    ShardId shard, std::uint64_t epoch, const Fr& nullifier,
    const sss::Share& share, std::uint64_t proof_fp) {
  // Records outliving their cutover (post-linger WAL tail) are dead by
  // construction — the epoch gate already refuses their whole era.
  if (!domain_map_.has_value()) return;
  (void)domain_logs_[shard].observe(epoch, nullifier, share, proof_fp);
}

void ReshardCoordinator::gc(std::uint64_t current_epoch, std::uint64_t thr) {
  for (auto& [shard, log] : domain_logs_) log.gc(current_epoch, thr);
}

void ReshardCoordinator::end_linger() {
  domain_map_.reset();
  domain_logs_.clear();
  linger_until_epoch_ = 0;
}

std::size_t ReshardCoordinator::domain_entries() const {
  std::size_t n = 0;
  for (const auto& [shard, log] : domain_logs_) n += log.entry_count();
  return n;
}

namespace {

void write_shard_config(ByteWriter& w, const ShardConfig& config) {
  w.write_u16(config.num_shards);
  w.write_u32(config.generation);
  w.write_u16(static_cast<std::uint16_t>(config.subscribe.size()));
  for (const ShardId s : config.subscribe) w.write_u16(s);
}

ShardConfig read_shard_config(ByteReader& r) {
  ShardConfig config;
  config.num_shards = r.read_u16();
  config.generation = r.read_u32();
  const std::uint16_t n = r.read_u16();
  config.subscribe.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) config.subscribe.push_back(r.read_u16());
  return config;
}

}  // namespace

Bytes ReshardCoordinator::serialize() const {
  ByteWriter w;
  w.write_u8(1);  // version
  w.write_u8(static_cast<std::uint8_t>(phase_));
  write_shard_config(w, current_);
  w.write_bytes(current_map_.serialize());
  w.write_u8(next_.has_value() ? 1 : 0);
  if (next_.has_value()) {
    write_shard_config(w, *next_);
    w.write_bytes(next_map_->serialize());
  }
  w.write_u8(domain_map_.has_value() ? 1 : 0);
  if (domain_map_.has_value()) {
    w.write_bytes(domain_map_->serialize());
  }
  w.write_u64(linger_until_epoch_);
  w.write_u16(static_cast<std::uint16_t>(domain_logs_.size()));
  for (const auto& [shard, log] : domain_logs_) {
    w.write_u16(shard);
    w.write_bytes(log.serialize());
  }
  return std::move(w).take();
}

void ReshardCoordinator::restore(BytesView bytes) {
  ByteReader r(bytes);
  WAKU_EXPECTS(r.read_u8() == 1);
  phase_ = static_cast<ReshardPhase>(r.read_u8());
  current_ = read_shard_config(r);
  current_map_ = ShardMap::deserialize(r.read_bytes());
  next_.reset();
  next_map_.reset();
  if (r.read_u8() != 0) {
    next_ = read_shard_config(r);
    next_map_ = ShardMap::deserialize(r.read_bytes());
  }
  domain_map_.reset();
  if (r.read_u8() != 0) {
    domain_map_ = ShardMap::deserialize(r.read_bytes());
  }
  linger_until_epoch_ = r.read_u64();
  domain_logs_.clear();
  const std::uint16_t logs = r.read_u16();
  for (std::uint16_t i = 0; i < logs; ++i) {
    const ShardId shard = r.read_u16();
    const Bytes log_bytes = r.read_bytes();
    domain_logs_[shard].restore(log_bytes);
  }
}

std::vector<ShardId> refined_subscription(const ShardConfig& current,
                                          std::uint16_t target_num_shards) {
  (void)target_num_shards;  // every old home is already a valid new home
  if (current.subscribe.empty()) return {};  // all shards -> all shards
  return current.subscribe;
}

// -- Load-driven rebalancing --------------------------------------------------

void ShardLoadTracker::record(ShardId shard, std::uint64_t accepted_total,
                              std::size_t log_entries, std::uint64_t now_ms,
                              double p95_validate_ms) {
  PerShard& state = shards_[shard];
  state.log_entries = log_entries;
  state.p95_validate_ms = p95_validate_ms;
  state.window.push_back(Sample{now_ms, accepted_total});
  while (state.window.size() > 1 &&
         now_ms - state.window.front().at_ms > config_.window_ms) {
    state.window.pop_front();
  }
}

double ShardLoadTracker::rate_msgs_per_sec(ShardId shard) const {
  const auto it = shards_.find(shard);
  if (it == shards_.end() || it->second.window.size() < 2) return 0;
  const Sample& first = it->second.window.front();
  const Sample& last = it->second.window.back();
  if (last.at_ms <= first.at_ms) return 0;
  return static_cast<double>(last.accepted_total - first.accepted_total) *
         1000.0 / static_cast<double>(last.at_ms - first.at_ms);
}

std::size_t ShardLoadTracker::log_entries(ShardId shard) const {
  const auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.log_entries;
}

double ShardLoadTracker::p95_validate_ms(ShardId shard) const {
  const auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.p95_validate_ms;
}

RebalanceRecommendation ShardLoadTracker::recommend(
    const ShardMap& map, std::span<const std::string> active_topics) const {
  RebalanceRecommendation rec;
  rec.current_shards = map.num_shards();
  rec.target_shards = map.num_shards();

  double total = 0;
  for (const ShardId shard : map.all_shards()) {
    const double rate = rate_msgs_per_sec(shard);
    total += rate;
    rec.max_rate_msgs_per_sec = std::max(rec.max_rate_msgs_per_sec, rate);
    rec.max_log_entries = std::max(rec.max_log_entries, log_entries(shard));
    rec.max_p95_validate_ms =
        std::max(rec.max_p95_validate_ms, p95_validate_ms(shard));
  }
  rec.mean_rate_msgs_per_sec = total / map.num_shards();
  rec.skew = rec.mean_rate_msgs_per_sec > 0
                 ? rec.max_rate_msgs_per_sec / rec.mean_rate_msgs_per_sec
                 : 1.0;

  const bool overloaded =
      rec.max_rate_msgs_per_sec > config_.overload_msgs_per_sec;
  // Skew alone only matters when the hot shard carries real load — a
  // near-idle deployment with one chatty topic is not worth a migration.
  const bool skewed =
      rec.skew > config_.skew_threshold &&
      rec.max_rate_msgs_per_sec > config_.overload_msgs_per_sec / 2;
  const bool log_pressure = rec.max_log_entries > config_.log_entries_soft_cap;
  // Latency pressure comes from node telemetry (pipeline latency
  // histograms); shards that never reported a p95 stay at 0 and cannot
  // trip it.
  const bool latency_pressure =
      config_.p95_budget_ms > 0 &&
      rec.max_p95_validate_ms > config_.p95_budget_ms;
  if (!overloaded && !skewed && !log_pressure && !latency_pressure) return rec;

  rec.reshard_recommended = true;
  // Power-of-two split factor sized so the hot shard's load, spread over
  // its family, fits the budget again (capped: one reshard at most 8×).
  std::uint16_t factor = 2;
  while (factor < 8 &&
         rec.max_rate_msgs_per_sec / factor > config_.overload_msgs_per_sec) {
    factor = static_cast<std::uint16_t>(factor * 2);
  }
  rec.target_shards = static_cast<std::uint16_t>(map.num_shards() * factor);
  if (overloaded) {
    rec.reason = "shard over throughput budget";
  } else if (skewed) {
    rec.reason = "load skew over threshold";
  } else if (log_pressure) {
    rec.reason = "nullifier log over soft cap";
  } else {
    rec.reason = "validation p95 over latency budget";
  }
  if (!active_topics.empty()) {
    std::vector<std::string> topics(active_topics.begin(),
                                    active_topics.end());
    rec.predicted_moved_topics =
        ShardMap::moved_topics(map, map.split(factor), topics).size();
  }
  return rec;
}

std::string RebalanceRecommendation::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"reshard_recommended\": %s, \"current_shards\": %u, "
      "\"target_shards\": %u, \"max_rate_msgs_per_sec\": %.2f, "
      "\"mean_rate_msgs_per_sec\": %.2f, \"skew\": %.3f, "
      "\"max_log_entries\": %zu, \"max_p95_validate_ms\": %.2f, "
      "\"predicted_moved_topics\": %zu, \"reason\": \"%s\"}",
      reshard_recommended ? "true" : "false", current_shards, target_shards,
      max_rate_msgs_per_sec, mean_rate_msgs_per_sec, skew, max_log_entries,
      max_p95_validate_ms, predicted_moved_topics, reason.c_str());
  return buf;
}

}  // namespace waku::shard
