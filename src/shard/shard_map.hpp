// ShardMap: deterministic partition of the relay into N shards.
//
// The paper's single RLN-gated pubsub topic makes the whole network one
// rate-limit domain and one gossip mesh; production Waku splits the relay
// into shards (one gossipsub mesh per shard, RFC 51/WAKU2-RELAY-SHARDING)
// so throughput, nullifier state, and adversarial blast radius scale with
// shard count. This map is the one authority every layer shares:
//
//   * content topic -> shard: keccak(generation || topic) mod N. Every
//     peer computes the same assignment with no coordination, and the
//     assignment is uniform over shards for arbitrary topic strings.
//   * shard -> pubsub topic: "/waku/2/rs/<generation>/<shard>" — the
//     shard-qualified gossipsub topics the meshes form over (rs =
//     relay-shard, mirroring Waku's /waku/2/rs/<cluster>/<index> form).
//   * resharding is config-driven: a new ShardConfig{num_shards,
//     generation} re-keys the whole assignment (the generation salts the
//     hash AND renames the pubsub topics, so peers on the old layout
//     cannot accidentally mesh with peers on the new one mid-migration).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace waku::shard {

using ShardId = std::uint16_t;

/// Static sharding layout plus this node's subscription subset; rides in
/// NodeConfig so a whole deployment shares one layout by configuration.
struct ShardConfig {
  std::uint16_t num_shards = 1;
  /// Resharding generation: bumping it re-keys topic->shard assignment and
  /// renames every shard's pubsub topic (see file comment).
  std::uint32_t generation = 0;
  /// Shards this node subscribes to (meshes joined, validators installed,
  /// nullifier logs kept). Empty = all shards.
  std::vector<ShardId> subscribe;

  /// The effective subscription set: `subscribe`, or all shards if empty.
  [[nodiscard]] std::vector<ShardId> subscribed_shards() const;
};

/// One (shard, watermark) pair of a serving peer's nullifier GC state —
/// what shard-scoped checkpoints carry per subscribed shard.
struct ShardWatermark {
  ShardId shard = 0;
  std::uint64_t min_epoch = 0;

  friend bool operator==(const ShardWatermark&,
                         const ShardWatermark&) = default;
};

class ShardMap {
 public:
  explicit ShardMap(std::uint16_t num_shards = 1,
                    std::uint32_t generation = 0);
  explicit ShardMap(const ShardConfig& config)
      : ShardMap(config.num_shards, config.generation) {}

  /// Deterministic content-topic assignment (identical on every peer).
  /// Amortized O(1): the keccak-per-lineage-layer walk runs only on a memo
  /// miss; repeated lookups of live topics hit a bounded topic->shard memo
  /// (thread-safe, shared across copies of the same map, and naturally
  /// invalidated by resharding — split()/resharded()/deserialize build new
  /// maps, and a new map starts with a fresh memo).
  [[nodiscard]] ShardId shard_of(std::string_view content_topic) const;

  /// Memo effectiveness counters (hits/misses/flushes) for benches and the
  /// O(1)-amortized-lookup assertion.
  struct MemoStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t flushes = 0;  ///< capacity-triggered full clears
  };
  [[nodiscard]] MemoStats memo_stats() const;

  /// Shard-qualified gossipsub topic for `shard`.
  [[nodiscard]] std::string pubsub_topic(ShardId shard) const;

  /// Inverse of pubsub_topic for *this* map's generation; nullopt for
  /// foreign topics (other generations, non-shard topics).
  [[nodiscard]] std::optional<ShardId> parse_pubsub_topic(
      std::string_view pubsub_topic) const;

  [[nodiscard]] std::uint16_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  [[nodiscard]] std::vector<ShardId> all_shards() const;

  /// The config-driven reshard: same map with `new_num_shards` and the
  /// next generation. Callers swap maps atomically (there is no partial
  /// migration state — the generation salt keeps layouts disjoint). The
  /// re-key is total: a topic's new shard is independent of its old one,
  /// which is fine for an offline/config-push migration but NOT locally
  /// enforceable during a live cutover — use split() for that.
  [[nodiscard]] ShardMap resharded(std::uint16_t new_num_shards) const {
    return ShardMap(new_num_shards, generation_ + 1);
  }

  /// Hierarchical reshard: `factor`× more shards, next generation, and the
  /// refinement guarantee the LIVE reshard engine depends on:
  ///
  ///   split().shard_of(T) % num_shards() == shard_of(T)   for every T.
  ///
  /// A topic can only move within its old shard's family {s, s+N, s+2N,
  /// ...}, so a node subscribed to (old home s, new home s') with
  /// s' ≡ s (mod N) sees BOTH generations' meshes of every topic it
  /// hosts — which is what lets it enforce the shared cutover rate-limit
  /// domain without any cross-node coordination (see shard/reshard.hpp).
  [[nodiscard]] ShardMap split(std::uint16_t factor) const;

  [[nodiscard]] bool is_split() const { return parent_ != nullptr; }
  /// The map this one was split from (nullptr for flat maps).
  [[nodiscard]] const ShardMap* parent() const { return parent_.get(); }

  /// Topics whose assignment differs between two maps — the migration
  /// work-list an operator sizes a reshard by.
  static std::vector<std::string> moved_topics(
      const ShardMap& from, const ShardMap& to,
      std::span<const std::string> topics);

  /// Canonical serialization (split lineage included) — reshard
  /// coordinator snapshots carry maps across restarts.
  [[nodiscard]] Bytes serialize() const;
  static ShardMap deserialize(BytesView bytes);

  /// Value equality including the split lineage (a split map never equals
  /// a flat map, even at matching (num_shards, generation)): the lineage
  /// changes shard_of.
  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    if (a.num_shards_ != b.num_shards_ || a.generation_ != b.generation_) {
      return false;
    }
    if ((a.parent_ == nullptr) != (b.parent_ == nullptr)) return false;
    return a.parent_ == nullptr || *a.parent_ == *b.parent_;
  }

 private:
  /// The uncached assignment walk (one keccak per lineage layer).
  [[nodiscard]] ShardId compute_shard_of(std::string_view content_topic) const;

  std::uint16_t num_shards_;
  std::uint32_t generation_;
  /// Split lineage; shared (immutable) so copies stay cheap.
  std::shared_ptr<const ShardMap> parent_;
  /// Bounded topic->shard memo (defined in the .cpp). Shared across copies
  /// — copies denote the same layout, so they may share warm entries; any
  /// layout change constructs a new map and with it a fresh memo.
  struct Memo;
  std::shared_ptr<Memo> memo_;
};

/// Deterministically finds a content topic assigned to `shard` under
/// `map` by probing "<prefix><n>/proto" for n = 0, 1, ... — traffic
/// generators and tests use it to aim messages at a specific shard.
std::string content_topic_for_shard(const ShardMap& map, ShardId shard,
                                    std::string_view prefix = "/waku/2/app-");

}  // namespace waku::shard
