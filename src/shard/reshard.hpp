// Live reshard engine: load-driven rebalancing with generation cutover.
//
// PR 4 made resharding *possible* (bump ShardConfig::generation, push the
// config) but a running fleet could not move from generation G to G+1
// without a flag day: old-gen and new-gen pubsub topics are disjoint by
// design, so a naive switch drops every message published by a peer still
// on the other layout — and a careless overlap window reopens exactly the
// cross-shard double-signal gap the per-shard nullifier design closed
// (publish once on the old mesh, once on the new mesh, same epoch: two
// "first signals", doubled quota). This engine closes both:
//
//   ReshardCoordinator — per-node staged cutover state machine
//
//     kStable -> kAnnounce -> kOverlap -> kDrain -> kStable (gen+1)
//                                                   \ + linger window
//
//     * kAnnounce   the reshard is journaled and advertised; topology
//                   still runs purely on generation G.
//     * kOverlap    the node meshes BOTH /waku/2/rs/G/* and
//                   /waku/2/rs/G+1/* for its shards. Publishes still
//                   route to G (authoritative). Dual-generation RLN
//                   enforcement is active: every message on either mesh
//                   observes into a shared per-DOMAIN nullifier log
//                   (domain = the topic's generation-G shard), so the
//                   same nullifier on a topic's old-gen and new-gen
//                   shard within one epoch is ONE signal — a duplicate
//                   share is dropped, a conflicting share is a
//                   double-signal that recovers sk and slashes.
//     * kDrain      publishes route to G+1; the G meshes stay subscribed
//                   so in-flight old-gen traffic still delivers and
//                   still debits the shared domain quota.
//     * drop-old    the G meshes are unsubscribed and the node runs on
//                   G+1 alone. The domain logs LINGER for Thr+1 epochs:
//                   relayed stragglers from peers that drained later
//                   keep hitting the shared log until the epoch gate
//                   makes every cutover-era epoch unacceptable, at which
//                   point the domain state is provably dead and dropped.
//
//     Locality requirement: the cutover runs on ShardMap::split()
//     layouts (new shard ≡ old shard mod old N), so a node subscribed to
//     (old home s, new home s' ≡ s) sees both generations' meshes of
//     every topic it hosts — the shared domain log is enforceable
//     per-node, with zero cross-node coordination.
//
//   ShardLoadTracker — the "when to reshard" signal: per-shard validated
//     msgs/sec (rolling window) plus nullifier-log sizes, aggregated from
//     the pipelines each upkeep tick; recommend() emits a rebalance
//     recommendation (target shard count + predicted moved-topics cost)
//     once a shard crosses its throughput budget or the load skew
//     crosses a threshold.
//
// The coordinator is transport- and persistence-agnostic: the node owns
// relay wiring and WAL journaling (rln/node.cpp, WAL v3 records), the sim
// layer owns fleet orchestration (sim::run_live_reshard_campaign).
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "rln/nullifier_log.hpp"
#include "shard/shard_map.hpp"

namespace waku::shard {

using ff::Fr;

enum class ReshardPhase : std::uint8_t {
  kStable = 0,
  kAnnounce = 1,
  kOverlap = 2,
  kDrain = 3,
};

[[nodiscard]] const char* reshard_phase_name(ReshardPhase phase);

class ReshardCoordinator {
 public:
  explicit ReshardCoordinator(const ShardConfig& current);

  [[nodiscard]] ReshardPhase phase() const { return phase_; }
  [[nodiscard]] bool in_cutover() const {
    return phase_ != ReshardPhase::kStable;
  }
  /// Domain (old-generation) state still held after drop-old — while
  /// true, a new reshard cannot begin and domain routing stays active.
  [[nodiscard]] bool lingering() const { return domain_map_.has_value(); }

  /// The authoritative layout for local state keying (generation G until
  /// drop-old, G+1 after).
  [[nodiscard]] const ShardMap& current_map() const { return current_map_; }
  [[nodiscard]] const ShardConfig& current_config() const { return current_; }
  /// The incoming layout; only during announce/overlap/drain.
  [[nodiscard]] const ShardMap& next_map() const;
  [[nodiscard]] const ShardConfig& next_config() const;
  /// Publish routing: the next generation takes over at kDrain.
  [[nodiscard]] bool next_generation_authoritative() const {
    return phase_ == ReshardPhase::kDrain;
  }

  /// kStable -> kAnnounce. `target_num_shards` must be a multiple of the
  /// current count (the cutover runs on split() layouts — see file
  /// comment); `subscribe` is this node's new-generation subscription
  /// (empty = all), where every new home must refine an old home
  /// (s' mod old N subscribed under G) or the node could not enforce the
  /// shared domain quota for topics it hosts. Returns false (no state
  /// change) when already in cutover, still lingering, or the layout is
  /// not a valid split.
  bool begin(std::uint16_t target_num_shards, std::vector<ShardId> subscribe);

  /// One phase step: kAnnounce->kOverlap, kOverlap->kDrain,
  /// kDrain->kStable (drop-old). At drop-old the next config becomes
  /// current and the domain logs enter their linger window, which expires
  /// once current_epoch > `linger_until_epoch` (the node computes
  /// cutover_epoch + Thr + 1 live and journals it, so a crash-restart
  /// replays the identical window). Returns false from kStable.
  bool advance(std::uint64_t linger_until_epoch = 0);

  // -- Dual-generation rate-limit domain -------------------------------------

  /// The shared nullifier log every message for `content_topic` must
  /// observe into while cutover/linger domain routing is active — keyed
  /// by the topic's OLD-generation shard, shared by both generations'
  /// meshes. nullptr when no redirect applies (stable, or announce: the
  /// single live generation's own logs are the domain).
  [[nodiscard]] rln::NullifierLog* domain_log(std::string_view content_topic);

  /// The old-generation (domain) shard of a topic while domain routing is
  /// active — the WAL tag cutover observations journal under.
  [[nodiscard]] std::optional<ShardId> domain_of(
      std::string_view content_topic) const;

  /// Seeds domain log `shard` from a serialized rln::NullifierLog — at
  /// overlap entry the node copies each hosted old shard's log history in,
  /// so pre-cutover signals keep counting against the cutover quota.
  void seed_domain_log(ShardId shard, BytesView log_bytes);

  /// WAL replay of one cutover observation (domain-tagged). Dropped when
  /// domain routing is no longer active.
  void inject_domain_observation(ShardId shard, std::uint64_t epoch,
                                 const Fr& nullifier, const sss::Share& share,
                                 std::uint64_t proof_fp);

  /// Epoch upkeep: GCs the domain logs. Linger expiry is NOT automatic —
  /// the owner checks linger_expired() and calls end_linger(), so it can
  /// journal the expiry (the node's quota re-keying and a later
  /// cutover's begin() both depend on replaying it at the same point in
  /// the WAL stream).
  void gc(std::uint64_t current_epoch, std::uint64_t thr);

  /// True once every epoch the domain logs could still adjudicate is
  /// outside the epoch gate — time to end_linger().
  [[nodiscard]] bool linger_expired(std::uint64_t current_epoch) const {
    return phase_ == ReshardPhase::kStable && domain_map_.has_value() &&
           linger_until_epoch_ != 0 && current_epoch > linger_until_epoch_;
  }

  /// Drops the domain state (map, logs, deadline); domain routing stops
  /// and the next cutover may begin.
  void end_linger();

  [[nodiscard]] std::uint64_t linger_until_epoch() const {
    return linger_until_epoch_;
  }
  /// Total entries across the domain logs (tests/operators).
  [[nodiscard]] std::size_t domain_entries() const;

  /// Full coordinator state (phase, configs, lineage maps, linger window,
  /// domain logs) — rides in the node snapshot so a mid-reshard restart
  /// resumes the exact phase fail-closed.
  [[nodiscard]] Bytes serialize() const;
  void restore(BytesView bytes);

 private:
  static ShardMap map_for(const ShardConfig& config) {
    return ShardMap(config.num_shards, config.generation);
  }

  ReshardPhase phase_ = ReshardPhase::kStable;
  ShardConfig current_;
  ShardMap current_map_;
  std::optional<ShardConfig> next_;
  std::optional<ShardMap> next_map_;
  /// The generation-G layout the domain logs are keyed by; set at overlap
  /// entry, retained through drain and the post-drop-old linger.
  std::optional<ShardMap> domain_map_;
  std::map<ShardId, rln::NullifierLog> domain_logs_;
  std::uint64_t linger_until_epoch_ = 0;
};

/// The conservative default new-generation subscription for a node whose
/// operator triggers a reshard without an installed chooser: each
/// subscribed old home s keeps its lowest family member (new shard s —
/// valid because s < old N <= target and s mod old N == s). Always
/// passes begin()'s refinement check; an empty old subscription (= all
/// shards) maps to an empty new one (= all). Deployments that want the
/// family spread out across nodes install a per-node chooser instead
/// (rln::OperatorConfig::subscribe_chooser).
[[nodiscard]] std::vector<ShardId> refined_subscription(
    const ShardConfig& current, std::uint16_t target_num_shards);

// -- Load-driven rebalancing --------------------------------------------------

struct RebalanceRecommendation {
  bool reshard_recommended = false;
  std::uint16_t current_shards = 1;
  /// Recommended target count: current × 2^k, directly usable as the
  /// ReshardCoordinator::begin target (split layouts need a multiple).
  std::uint16_t target_shards = 1;
  double max_rate_msgs_per_sec = 0;
  double mean_rate_msgs_per_sec = 0;
  /// max/mean across shards (1.0 = perfectly balanced).
  double skew = 1.0;
  std::size_t max_log_entries = 0;
  /// Worst per-shard p95 whole-window validation latency (ms) the node
  /// fed from its pipeline latency histograms; 0 until a node wires
  /// telemetry in.
  double max_p95_validate_ms = 0;
  /// Topics (of the sampled active set) whose assignment changes under
  /// the recommended split — the migration cost an operator weighs.
  std::size_t predicted_moved_topics = 0;
  std::string reason;

  [[nodiscard]] std::string to_json() const;
};

/// Aggregates per-shard validated-message rates and nullifier-log sizes
/// into a reshard recommendation. The node feeds it cumulative pipeline
/// counters once per upkeep tick; rates come from a rolling window so a
/// burst decays instead of recommending forever.
class ShardLoadTracker {
 public:
  struct Config {
    /// Rolling rate window.
    std::uint64_t window_ms = 30'000;
    /// Per-shard validated throughput budget; a shard past this is
    /// overloaded regardless of skew.
    double overload_msgs_per_sec = 200.0;
    /// max/mean rate ratio that flags imbalance (only acted on when the
    /// hot shard also carries meaningful absolute load).
    double skew_threshold = 3.0;
    /// Nullifier-log size that signals memory pressure on a shard.
    std::size_t log_entries_soft_cap = 1 << 16;
    /// p95 whole-window validation latency past which a shard counts as
    /// latency-overloaded even when its throughput fits the budget —
    /// the paper's bounded-validation-latency claim as an operational
    /// trigger. Only shards that actually report a p95 (> 0; requires
    /// node telemetry) can trip it.
    double p95_budget_ms = 250.0;
  };

  ShardLoadTracker() = default;
  explicit ShardLoadTracker(Config config) : config_(config) {}

  /// Records shard `shard`'s cumulative accepted-message counter and
  /// current nullifier-log size at local time `now_ms`. `p95_validate_ms`
  /// is the shard's p95 whole-window validation latency from the node's
  /// pipeline latency histogram (0 = telemetry not wired — latency plays
  /// no part in the recommendation then).
  void record(ShardId shard, std::uint64_t accepted_total,
              std::size_t log_entries, std::uint64_t now_ms,
              double p95_validate_ms = 0.0);

  /// Drops every window — a reshard's drop-old re-keys the shard id
  /// space AND resets the pipelines' cumulative counters, so mixing
  /// pre-cutover samples into post-cutover windows would wrap the
  /// unsigned deltas and fabricate astronomical rates.
  void reset() { shards_.clear(); }

  /// Validated msgs/sec over the rolling window (0 until two samples).
  [[nodiscard]] double rate_msgs_per_sec(ShardId shard) const;
  [[nodiscard]] std::size_t log_entries(ShardId shard) const;
  /// Last recorded p95 validation latency (ms); 0 when never reported.
  [[nodiscard]] double p95_validate_ms(ShardId shard) const;

  /// The rebalance verdict for layout `map`; `active_topics` (a sample of
  /// live content topics) sizes the predicted migration cost.
  [[nodiscard]] RebalanceRecommendation recommend(
      const ShardMap& map,
      std::span<const std::string> active_topics = {}) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Sample {
    std::uint64_t at_ms = 0;
    std::uint64_t accepted_total = 0;
  };
  struct PerShard {
    std::deque<Sample> window;
    std::size_t log_entries = 0;
    double p95_validate_ms = 0;
  };

  Config config_;
  std::map<ShardId, PerShard> shards_;
};

}  // namespace waku::shard
