#include "shard/sharded_validator.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/serde.hpp"

namespace waku::shard {

bool ShardRootCache::check(const Fr& root) {
  // Seqlock read shape: sample the version BEFORE copying the window and
  // record the sample, not a re-read. If a membership event lands mid-copy
  // the sample is already stale, so the next check refreshes again —
  // recording a post-copy version instead could pin a torn copy as
  // current. (Each cache is owned by one shard, and a shard's windows run
  // serially on one executor lane, so check() itself is never reentered.)
  const std::uint64_t version = group_.root_version();
  if (version_ != version) {
    // The shared window moved (membership event): rebuild the shard-local
    // copy. O(root_window), amortized over every message between events.
    roots_.clear();
    for (const Fr& r : group_.recent_roots()) roots_.insert(r);
    version_ = version;
    ++stats_.refreshes;
  }
  const bool ok = roots_.contains(root);
  ++(ok ? stats_.hits : stats_.misses);
  return ok;
}

ShardedValidator::ShardedValidator(const zksnark::VerifyingKey& vk,
                                   const rln::GroupManager& group,
                                   rln::ValidatorConfig config,
                                   ShardConfig shards, std::uint64_t seed)
    : ShardedValidator(vk, group, config, ShardMap(shards),
                       shards.subscribed_shards(), seed) {}

ShardedValidator::ShardedValidator(const zksnark::VerifyingKey& vk,
                                   const rln::GroupManager& group,
                                   rln::ValidatorConfig config, ShardMap map,
                                   std::vector<ShardId> subscribe,
                                   std::uint64_t seed)
    : map_(std::move(map)),
      config_(config),
      subscribed_(std::move(subscribe)) {
  if (subscribed_.empty()) subscribed_ = map_.all_shards();
  std::sort(subscribed_.begin(), subscribed_.end());
  subscribed_.erase(std::unique(subscribed_.begin(), subscribed_.end()),
                    subscribed_.end());
  WAKU_EXPECTS(!subscribed_.empty());
  for (const ShardId shard : subscribed_) {
    WAKU_EXPECTS(shard < map_.num_shards());
    // Distinct per-shard RLC seed: a sender who learns one shard's weight
    // stream must gain nothing on any other shard.
    auto state = std::make_unique<ShardState>(
        vk, group, config,
        seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) +
                                         1)));
    ShardRootCache* cache = &state->root_cache;
    state->pipeline.set_root_check(
        [cache](const Fr& root) { return cache->check(root); });
    shards_.emplace(shard, std::move(state));
  }
  executor_ =
      std::make_unique<rln::ValidationExecutor>(rln::ParallelismConfig{});
}

void ShardedValidator::set_parallelism(rln::ParallelismConfig parallel) {
  // Destroying the old executor drains its queues and joins its pool, so
  // no window of ours can still be running when the new one starts.
  executor_.reset();
  executor_ = std::make_unique<rln::ValidationExecutor>(parallel);
  executor_->set_clock(executor_clock_);
}

std::vector<rln::ValidationOutcome> ShardedValidator::validate_batch(
    ShardId shard, std::span<const WakuMessage> messages,
    std::uint64_t local_now_ms) {
  return executor_->validate(shard, pipeline(shard), messages, local_now_ms);
}

std::vector<rln::ValidationOutcome> ShardedValidator::validate_batch(
    ShardId shard, std::span<const WakuMessage> messages,
    std::span<const std::uint64_t> received_at_ms) {
  return executor_->validate(shard, pipeline(shard), messages,
                             received_at_ms);
}

bool ShardedValidator::submit(ShardId shard,
                              std::span<const WakuMessage> messages,
                              std::uint64_t local_now_ms,
                              rln::ValidationExecutor::Completion done) {
  return executor_->submit(shard, pipeline(shard), messages, local_now_ms,
                           std::move(done));
}

bool ShardedValidator::submit(ShardId shard,
                              std::span<const WakuMessage> messages,
                              std::span<const std::uint64_t> received_at_ms,
                              rln::ValidationExecutor::Completion done) {
  return executor_->submit(shard, pipeline(shard), messages, received_at_ms,
                           std::move(done));
}

rln::ValidationPipeline& ShardedValidator::pipeline(ShardId shard) {
  const auto it = shards_.find(shard);
  WAKU_EXPECTS(it != shards_.end());
  return it->second->pipeline;
}

const rln::ValidationPipeline& ShardedValidator::pipeline(
    ShardId shard) const {
  const auto it = shards_.find(shard);
  WAKU_EXPECTS(it != shards_.end());
  return it->second->pipeline;
}

const ShardRootCache::Stats& ShardedValidator::root_cache_stats(
    ShardId shard) const {
  const auto it = shards_.find(shard);
  WAKU_EXPECTS(it != shards_.end());
  return it->second->root_cache.stats();
}

rln::ValidatorStats ShardedValidator::stats() const {
  rln::ValidatorStats total;
  for (const auto& [shard, state] : shards_) {
    total += state->pipeline.stats();
  }
  return total;
}

void ShardedValidator::gc(std::uint64_t local_now_ms) {
  for (auto& [shard, state] : shards_) state->pipeline.gc(local_now_ms);
}

std::vector<ShardWatermark> ShardedValidator::nullifier_watermarks() const {
  std::vector<ShardWatermark> out;
  out.reserve(shards_.size());
  for (const auto& [shard, state] : shards_) {
    out.push_back(
        ShardWatermark{shard, state->pipeline.log().stats().min_epoch});
  }
  return out;
}

void ShardedValidator::seed_nullifier_watermarks(
    std::span<const ShardWatermark> watermarks) {
  for (const ShardWatermark& wm : watermarks) {
    const auto it = shards_.find(wm.shard);
    if (it == shards_.end()) continue;  // not subscribed here
    it->second->pipeline.seed_nullifier_watermark(wm.min_epoch);
  }
}

void ShardedValidator::set_observe_hook(ObserveHook hook) {
  observe_hook_ = std::move(hook);
  for (auto& [shard, state] : shards_) {
    if (!observe_hook_) {
      state->pipeline.set_observe_hook(nullptr);
      continue;
    }
    const ShardId owning_shard = shard;
    state->pipeline.set_observe_hook(
        [this, owning_shard](std::uint64_t epoch, const Fr& nullifier,
                             const sss::Share& share,
                             std::uint64_t proof_fp) {
          observe_hook_(owning_shard, epoch, nullifier, share, proof_fp);
        });
  }
}

void ShardedValidator::inject_observation(ShardId shard, std::uint64_t epoch,
                                          const Fr& nullifier,
                                          const sss::Share& share,
                                          std::uint64_t proof_fp) {
  const auto it = shards_.find(shard);
  if (it == shards_.end()) return;  // resharded away between runs
  it->second->pipeline.inject_observation(epoch, nullifier, share, proof_fp);
}

Bytes ShardedValidator::serialize_state() const {
  ByteWriter w;
  w.write_u8(1);  // version
  w.write_u16(static_cast<std::uint16_t>(shards_.size()));
  for (const auto& [shard, state] : shards_) {
    w.write_u16(shard);
    w.write_bytes(state->pipeline.serialize_state());
  }
  return std::move(w).take();
}

void ShardedValidator::restore_state(BytesView bytes) {
  ByteReader r(bytes);
  WAKU_EXPECTS(r.read_u8() == 1);
  const std::uint16_t count = r.read_u16();
  for (std::uint16_t i = 0; i < count; ++i) {
    const ShardId shard = r.read_u16();
    const Bytes state = r.read_bytes();
    const auto it = shards_.find(shard);
    // A shard persisted by a previous configuration but no longer
    // subscribed is dropped — its log belongs to a mesh we are not in.
    if (it == shards_.end()) continue;
    it->second->pipeline.restore_state(state);
  }
}

}  // namespace waku::shard
