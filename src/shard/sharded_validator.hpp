// Per-shard RLN enforcement over one shared membership tree.
//
// The membership contract, the identity-commitment tree, and slashing stay
// global — a member is a member of the network, not of a shard. What
// shards are the *rate-limit domains*: each shard a node subscribes to
// gets its own staged ValidationPipeline, and therefore its own
//
//   * NullifierLog — the (epoch, nullifier) -> share map is shard-scoped,
//     so the same nullifier observed on two different shards is two
//     independent first signals, never a cross-shard double-signal (the
//     quota is one message per member per epoch PER SHARD);
//   * rolling root cache — a ShardRootCache mirrors the shared group's
//     root window behind a version check, so the hot-path root test reads
//     no cross-shard state;
//   * batch state and verdict counters — a flood saturating one shard's
//     validation windows cannot delay or skew another shard's batches.
//
// ShardedValidator is the node-side container for those per-shard
// pipelines; with the default 1-shard ShardConfig it degenerates to
// exactly the pre-sharding single-pipeline behaviour.
#pragma once

#include <map>
#include <memory>
#include <unordered_set>

#include "rln/validation_executor.hpp"
#include "rln/validation_pipeline.hpp"
#include "shard/shard_map.hpp"

namespace waku::shard {

using ff::Fr;

/// Shard-local mirror of the shared GroupManager's rolling root window.
/// check() is O(1): a version counter comparison plus one hash lookup;
/// the window copy refreshes only when the shared window actually changed
/// (membership events), never per message.
class ShardRootCache {
 public:
  explicit ShardRootCache(const rln::GroupManager& group) : group_(group) {}

  [[nodiscard]] bool check(const Fr& root);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t refreshes = 0;  ///< window copies rebuilt
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  const rln::GroupManager& group_;
  std::uint64_t version_ = ~std::uint64_t{0};
  std::unordered_set<Fr, ff::FrHash> roots_;
  Stats stats_;
};

class ShardedValidator {
 public:
  /// `vk` and `group` must outlive the validator (same contract as
  /// ValidationPipeline). One pipeline is built per subscribed shard, each
  /// with a distinct RLC seed derived from `seed`.
  ShardedValidator(const zksnark::VerifyingKey& vk,
                   const rln::GroupManager& group,
                   rln::ValidatorConfig config, ShardConfig shards,
                   std::uint64_t seed);

  /// Same, over an explicit (possibly split-lineage) ShardMap — the live
  /// reshard engine builds the incoming generation's validator on a
  /// ShardMap::split() layout, whose topic assignment a flat
  /// ShardConfig-built map cannot reproduce. `subscribe` empty = all.
  ShardedValidator(const zksnark::VerifyingKey& vk,
                   const rln::GroupManager& group,
                   rln::ValidatorConfig config, ShardMap map,
                   std::vector<ShardId> subscribe, std::uint64_t seed);

  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] const std::vector<ShardId>& subscribed() const {
    return subscribed_;
  }
  [[nodiscard]] bool subscribes(ShardId shard) const {
    return shards_.contains(shard);
  }
  /// The first subscribed shard — what single-pipeline-era call sites get
  /// from the shardless accessors below.
  [[nodiscard]] ShardId default_shard() const { return subscribed_.front(); }
  [[nodiscard]] ShardId shard_of(std::string_view content_topic) const {
    return map_.shard_of(content_topic);
  }

  /// Per-shard pipeline access; the shard must be subscribed.
  [[nodiscard]] rln::ValidationPipeline& pipeline(ShardId shard);
  [[nodiscard]] const rln::ValidationPipeline& pipeline(ShardId shard) const;
  [[nodiscard]] rln::ValidationPipeline& pipeline_for_topic(
      std::string_view content_topic) {
    return pipeline(map_.shard_of(content_topic));
  }

  // -- Executor-backed validation ---------------------------------------------

  /// Replaces the validation executor (draining the old one first). The
  /// default is the deterministic inline executor — exact single-threaded
  /// semantics. Must not race in-flight submits.
  void set_parallelism(rln::ParallelismConfig parallel);
  [[nodiscard]] const rln::ParallelismConfig& parallelism() const {
    return executor_->config();
  }
  [[nodiscard]] rln::ExecutorStats executor_stats() const {
    return executor_->stats();
  }
  /// Per-lane executor observability (queue-wait/service histograms,
  /// depth high-watermarks); see rln::ValidationExecutor::lane_stats.
  [[nodiscard]] std::vector<rln::LaneObsSnapshot> executor_lane_stats() const {
    return executor_->lane_stats();
  }

  /// Wires executor queue-wait/service timing (nullptr disables). The
  /// clock is remembered: set_parallelism re-applies it to the executor
  /// it builds, so a parallelism switch never silently drops timing.
  void set_executor_clock(const obs::Clock* clock) {
    executor_clock_ = clock;
    executor_->set_clock(clock);
  }

  /// Blocking batch validation of one shard's window through the executor:
  /// deterministic mode runs inline (the pre-executor code path verbatim);
  /// parallel mode queues onto the shard's lane and waits, keeping
  /// per-shard submission order against async submits.
  std::vector<rln::ValidationOutcome> validate_batch(
      ShardId shard, std::span<const WakuMessage> messages,
      std::uint64_t local_now_ms);
  std::vector<rln::ValidationOutcome> validate_batch(
      ShardId shard, std::span<const WakuMessage> messages,
      std::span<const std::uint64_t> received_at_ms);

  /// Async window submission (parallel-mode fan-out; see
  /// rln::ValidationExecutor::submit for the lifetime contract on
  /// `messages`). Returns false iff kReject backpressure refused it.
  bool submit(ShardId shard, std::span<const WakuMessage> messages,
              std::uint64_t local_now_ms,
              rln::ValidationExecutor::Completion done);
  bool submit(ShardId shard, std::span<const WakuMessage> messages,
              std::span<const std::uint64_t> received_at_ms,
              rln::ValidationExecutor::Completion done);
  /// Waits until every submitted window has completed.
  void drain() { executor_->drain(); }

  /// Compatibility surface for pre-sharding call sites (stats readers,
  /// crash-restart equality assertions): the default shard's pipeline/log
  /// and the field-wise aggregate across all shards.
  [[nodiscard]] rln::ValidationPipeline& default_pipeline() {
    return pipeline(default_shard());
  }
  [[nodiscard]] const rln::NullifierLog& log() const {
    return pipeline(default_shard()).log();
  }
  [[nodiscard]] const rln::NullifierLog& log_of(ShardId shard) const {
    return pipeline(shard).log();
  }
  [[nodiscard]] rln::ValidatorStats stats() const;
  [[nodiscard]] const rln::ValidatorConfig& config() const { return config_; }
  [[nodiscard]] const ShardRootCache::Stats& root_cache_stats(
      ShardId shard) const;

  /// Nullifier-log GC across every subscribed shard.
  void gc(std::uint64_t local_now_ms);

  /// Per-shard GC watermarks, ordered by shard id — the shard-scoped
  /// checkpoint payload.
  [[nodiscard]] std::vector<ShardWatermark> nullifier_watermarks() const;
  /// Checkpoint bootstrap: seed each listed shard's (empty) log watermark;
  /// watermarks for unsubscribed shards are ignored.
  void seed_nullifier_watermarks(std::span<const ShardWatermark> watermarks);

  // -- Durable-state hooks ----------------------------------------------------

  /// Shard-tagged observation hook: fires (with the owning shard) whenever
  /// any shard's log records a new entry. The node journals these under
  /// the record's shard tag so a restart rebuilds each log independently.
  using ObserveHook = std::function<void(
      ShardId shard, std::uint64_t epoch, const Fr& nullifier,
      const sss::Share& share, std::uint64_t proof_fp)>;
  void set_observe_hook(ObserveHook hook);

  /// WAL replay of a shard-tagged observation. Records for shards this
  /// configuration no longer subscribes to are dropped (a reshard between
  /// runs must not resurrect foreign-log state).
  void inject_observation(ShardId shard, std::uint64_t epoch,
                          const Fr& nullifier, const sss::Share& share,
                          std::uint64_t proof_fp);

  /// Serializes every subscribed shard's pipeline state (shard-tagged).
  [[nodiscard]] Bytes serialize_state() const;
  void restore_state(BytesView bytes);

 private:
  struct ShardState {
    explicit ShardState(const zksnark::VerifyingKey& vk,
                        const rln::GroupManager& group,
                        rln::ValidatorConfig config, std::uint64_t seed)
        : root_cache(group), pipeline(vk, group, config, seed) {}
    ShardRootCache root_cache;
    rln::ValidationPipeline pipeline;
  };

  ShardMap map_;
  rln::ValidatorConfig config_;
  std::vector<ShardId> subscribed_;
  std::map<ShardId, std::unique_ptr<ShardState>> shards_;
  ObserveHook observe_hook_;
  /// Never null; defaults to the deterministic inline executor.
  std::unique_ptr<rln::ValidationExecutor> executor_;
  /// Re-applied to every executor set_parallelism builds.
  const obs::Clock* executor_clock_ = nullptr;
};

}  // namespace waku::shard
