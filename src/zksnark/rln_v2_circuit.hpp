// RLN-v2: per-member message quotas (extension).
//
// The paper fixes the rate at one message per epoch and notes the epoch
// length "should be configured to meet the desired messaging rate". The
// deployed successor (zerokit's RLN-v2) generalizes this: a member's leaf
// commits to a personal quota, leaf = Poseidon(pk, limit), and each message
// carries a private message_id with the in-circuit constraint
// 0 <= message_id < limit. The share slope and nullifier bind the id:
//
//   a1  = Poseidon(sk, external_nullifier, message_id)
//   y   = sk + a1 * x
//   phi = Poseidon(a1)
//
// Re-using a message_id within an epoch collides the nullifier and leaks
// sk exactly as in v1; distinct ids yield independent shares, so a member
// may send up to `limit` messages per epoch without penalty.
//
// Public inputs (canonical order): [x, y, phi, external_nullifier, root].
#pragma once

#include "merkle/merkle_tree.hpp"
#include "zksnark/circuit.hpp"
#include "zksnark/groth16.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::zksnark {

/// Bits allotted to quota values; limits must be < 2^kRlnV2LimitBits.
constexpr std::size_t kRlnV2LimitBits = 16;

struct RlnV2ProverInput {
  Fr sk;                    ///< identity secret key
  std::uint64_t limit = 1;  ///< quota committed in the leaf
  std::uint64_t message_id = 0;  ///< which of the `limit` slots this uses
  merkle::MerklePath path;  ///< auth path of the v2 leaf
  Fr x;                     ///< message hash
  Fr epoch;                 ///< external nullifier
};

/// The v2 leaf: Poseidon(pk, limit).
Fr rln_v2_leaf(const Fr& pk, std::uint64_t limit);

/// Honest public outputs for a prover input.
RlnPublicInputs rln_v2_compute_publics(const RlnV2ProverInput& input);

/// Builds constraints + witness; throws ContractViolation if message_id
/// does not fit the bit budget (an honest prover never hits this; a
/// cheating one cannot construct a witness at all).
RlnCircuit build_rln_v2_circuit(const RlnV2ProverInput& input);

/// Structure-only system for setup, parameterized by tree depth.
ConstraintSystem rln_v2_constraint_system(std::size_t depth);

/// Cached deterministic setup per depth (distinct from the v1 keypair).
const Keypair& rln_v2_keypair(std::size_t depth);

}  // namespace waku::zksnark
