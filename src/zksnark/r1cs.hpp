// Rank-1 Constraint System: the arithmetization Groth16 consumes.
//
// A constraint is <A,s> * <B,s> = <C,s> over the witness vector s, whose
// layout is the Groth16 convention: s[0] = 1, then the public inputs, then
// the private witness. The RLN relation (paper §II-B items 1-3) is compiled
// into this form by rln_circuit.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ff/fr.hpp"

namespace waku::zksnark {

using ff::Fr;

/// Index into the witness vector; 0 is the constant-one wire.
using VarIndex = std::uint32_t;

constexpr VarIndex kOneVar = 0;

/// Sparse linear combination sum(coeff_i * s[var_i]).
class LinearCombination {
 public:
  LinearCombination() = default;

  static LinearCombination constant(const Fr& c);
  static LinearCombination variable(VarIndex v, const Fr& coeff = Fr::one());

  LinearCombination& add_term(VarIndex v, const Fr& coeff);

  LinearCombination operator+(const LinearCombination& o) const;
  LinearCombination operator-(const LinearCombination& o) const;
  [[nodiscard]] LinearCombination scaled(const Fr& k) const;

  [[nodiscard]] Fr evaluate(std::span<const Fr> assignment) const;

  [[nodiscard]] const std::vector<std::pair<VarIndex, Fr>>& terms() const {
    return terms_;
  }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

 private:
  // Kept merged by variable index (small vectors; Poseidon wiring keeps
  // combinations a handful of terms long).
  std::vector<std::pair<VarIndex, Fr>> terms_;
};

/// One R1CS constraint with an annotation for debuggability.
struct Constraint {
  LinearCombination a;
  LinearCombination b;
  LinearCombination c;
  std::string annotation;
};

/// The constraint system plus variable bookkeeping.
class ConstraintSystem {
 public:
  /// Allocates a public-input variable. All public inputs must be
  /// allocated before any private witness variable (Groth16 layout).
  VarIndex allocate_public();

  /// Allocates a private witness variable.
  VarIndex allocate_private();

  /// Adds constraint a * b = c.
  void enforce(LinearCombination a, LinearCombination b, LinearCombination c,
               std::string annotation = {});

  [[nodiscard]] std::size_t num_constraints() const {
    return constraints_.size();
  }
  /// Total variables including the constant-one wire.
  [[nodiscard]] std::size_t num_variables() const { return num_vars_; }
  [[nodiscard]] std::size_t num_public() const { return num_public_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  /// Checks every constraint against a full assignment (s[0] must be 1).
  /// On failure optionally reports the first violated annotation.
  [[nodiscard]] bool is_satisfied(std::span<const Fr> assignment,
                                  std::string* first_violation = nullptr) const;

  /// Deterministic digest of the circuit structure; binds proofs to the
  /// exact constraint system they were generated for.
  [[nodiscard]] Fr digest() const;

 private:
  std::size_t num_vars_ = 1;  // the constant-one wire
  std::size_t num_public_ = 0;
  bool private_allocated_ = false;
  std::vector<Constraint> constraints_;
};

}  // namespace waku::zksnark
