// Reusable circuit gadgets: in-circuit Poseidon and Merkle-path ascent.
// These replicate, constraint-for-constraint, the native implementations in
// src/hash and src/merkle, so a witness generated natively always satisfies
// the circuit (tested in test_zksnark.cpp).
#pragma once

#include <vector>

#include "merkle/merkle_tree.hpp"
#include "zksnark/circuit.hpp"

namespace waku::zksnark {

/// In-circuit x^5 S-box (3 constraints).
Wire sbox_gadget(CircuitBuilder& b, const Wire& x);

/// In-circuit Poseidon permutation over `state` (t = state.size()).
void poseidon_permute_gadget(CircuitBuilder& b, std::vector<Wire>& state);

/// In-circuit Poseidon hash with the same sponge convention as
/// hash::poseidon_hash (capacity 0, output state[0]).
Wire poseidon_gadget(CircuitBuilder& b, std::span<const Wire> inputs);

Wire poseidon1_gadget(CircuitBuilder& b, const Wire& a);
Wire poseidon2_gadget(CircuitBuilder& b, const Wire& a, const Wire& c);

/// In-circuit Merkle root computation from a leaf and its auth path.
/// Allocates the path siblings and index bits as private witnesses and
/// returns the computed root wire. `path` supplies the witness values.
Wire merkle_root_gadget(CircuitBuilder& b, const Wire& leaf,
                        const merkle::MerklePath& path);

/// Decomposes `value` (whose witness must fit in `bits` bits) into bit
/// wires, least significant first, constraining booleanity and the
/// recomposition. The canonical range check: value < 2^bits.
std::vector<Wire> bits_gadget(CircuitBuilder& b, const Wire& value,
                              std::size_t bits);

/// Asserts a < b where both (witness values) fit in `bits` bits
/// (the circomlib LessThan construction used by RLN-v2's rate limit).
void assert_less_than(CircuitBuilder& b, const Wire& a, const Wire& b_bound,
                      std::size_t bits);

}  // namespace waku::zksnark
