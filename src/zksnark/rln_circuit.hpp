// The RLN relation compiled to R1CS (paper §II-B, items 1-3):
//
//   1. membership: pk = Poseidon(sk) is a leaf of the identity commitment
//      tree with root tau (proved via the in-circuit Merkle ascent);
//   2. share validity: y = sk + a1 * x with a1 = Poseidon(sk, epoch);
//   3. nullifier correctness: phi = Poseidon(a1).
//
// Public inputs, in canonical order: [x, y, phi, epoch, root].
// Private witness: sk, the auth-path siblings and index bits.
#pragma once

#include <memory>

#include "merkle/merkle_tree.hpp"
#include "zksnark/circuit.hpp"
#include "zksnark/groth16.hpp"

namespace waku::zksnark {

/// The five public inputs of the RLN circuit.
struct RlnPublicInputs {
  Fr x;          ///< message hash H(m), the Shamir share x-coordinate
  Fr y;          ///< Shamir share y-coordinate
  Fr nullifier;  ///< internal nullifier phi
  Fr epoch;      ///< external nullifier (the epoch)
  Fr root;       ///< identity-commitment tree root tau

  [[nodiscard]] std::vector<Fr> to_vector() const {
    return {x, y, nullifier, epoch, root};
  }
  friend bool operator==(const RlnPublicInputs&,
                         const RlnPublicInputs&) = default;
};

/// Private prover inputs.
struct RlnProverInput {
  Fr sk;                    ///< identity secret key
  merkle::MerklePath path;  ///< auth path of pk in the commitment tree
  Fr x;                     ///< message hash
  Fr epoch;                 ///< current external nullifier
};

/// Computes the honest public outputs for a prover input (native, outside
/// the circuit): a1 = H(sk, epoch), y = sk + a1*x, phi = H(a1),
/// root = ascend(H(sk), path).
RlnPublicInputs rln_compute_publics(const RlnProverInput& input);

/// A fully built and witnessed RLN circuit.
struct RlnCircuit {
  CircuitBuilder builder;
  RlnPublicInputs publics;
};

/// Builds constraints and witness for `input`. The builder's assignment is
/// ready for groth16 `prove`.
RlnCircuit build_rln_circuit(const RlnProverInput& input);

/// Builds the constraint structure for a given tree depth with a dummy
/// witness — used for trusted setup (structure depends only on depth).
ConstraintSystem rln_constraint_system(std::size_t depth);

/// Cached trusted-setup artifact per tree depth (the ceremony output all
/// nodes share). Deterministic for reproducibility of the benches.
const Keypair& rln_keypair(std::size_t depth);

}  // namespace waku::zksnark
