#include "zksnark/rln_v2_circuit.hpp"

#include <map>
#include <mutex>

#include "common/expect.hpp"
#include "hash/poseidon.hpp"
#include "zksnark/gadgets.hpp"

namespace waku::zksnark {

Fr rln_v2_leaf(const Fr& pk, std::uint64_t limit) {
  return hash::poseidon2(pk, Fr::from_u64(limit));
}

RlnPublicInputs rln_v2_compute_publics(const RlnV2ProverInput& input) {
  const Fr pk = hash::poseidon1(input.sk);
  const Fr a1 = hash::poseidon3(input.sk, input.epoch,
                                Fr::from_u64(input.message_id));
  RlnPublicInputs out;
  out.x = input.x;
  out.y = input.sk + a1 * input.x;
  out.nullifier = hash::poseidon1(a1);
  out.epoch = input.epoch;
  out.root = merkle::compute_root(rln_v2_leaf(pk, input.limit), input.path);
  return out;
}

RlnCircuit build_rln_v2_circuit(const RlnV2ProverInput& input) {
  WAKU_EXPECTS(!input.path.siblings.empty());
  WAKU_EXPECTS(input.limit >= 1 &&
               input.limit < (std::uint64_t{1} << kRlnV2LimitBits));

  RlnCircuit circuit;
  circuit.publics = rln_v2_compute_publics(input);
  CircuitBuilder& b = circuit.builder;

  const Wire x = b.public_input(circuit.publics.x);
  const Wire y = b.public_input(circuit.publics.y);
  const Wire nullifier = b.public_input(circuit.publics.nullifier);
  const Wire epoch = b.public_input(circuit.publics.epoch);
  const Wire root = b.public_input(circuit.publics.root);

  const Wire sk = b.witness(input.sk);
  const Wire limit = b.witness(Fr::from_u64(input.limit));
  const Wire message_id = b.witness(Fr::from_u64(input.message_id));

  // Quota: 0 <= message_id < limit (both within the bit budget).
  (void)bits_gadget(b, message_id, kRlnV2LimitBits);
  (void)bits_gadget(b, limit, kRlnV2LimitBits);
  assert_less_than(b, message_id, limit, kRlnV2LimitBits);

  // Membership of the quota-committing leaf.
  const Wire pk = poseidon1_gadget(b, sk);
  const Wire leaf = poseidon2_gadget(b, pk, limit);
  const Wire computed_root = merkle_root_gadget(b, leaf, input.path);
  b.assert_equal(computed_root, root, "v2_membership_root");

  // Share validity with the id-bound slope.
  const std::array<Wire, 3> a1_in{sk, epoch, message_id};
  const Wire a1 = poseidon_gadget(b, a1_in);
  const Wire a1x = b.mul(a1, x, "v2_share_slope_times_x");
  b.assert_equal(CircuitBuilder::add(sk, a1x), y, "v2_share_validity");

  // Nullifier correctness.
  const Wire phi = poseidon1_gadget(b, a1);
  b.assert_equal(phi, nullifier, "v2_nullifier_correctness");

  // Unlike v1, an over-quota message_id is representable here and simply
  // leaves the less-than constraint violated; prove() will refuse it.
  // Callers can inspect builder.satisfied() to see which constraint fails.
  return circuit;
}

ConstraintSystem rln_v2_constraint_system(std::size_t depth) {
  WAKU_EXPECTS(depth >= 1);
  RlnV2ProverInput dummy;
  dummy.sk = Fr::from_u64(1);
  dummy.limit = 1;
  dummy.message_id = 0;
  dummy.path.index = 0;
  dummy.path.siblings.assign(depth, Fr::zero());
  dummy.x = Fr::from_u64(2);
  dummy.epoch = Fr::from_u64(3);
  return build_rln_v2_circuit(dummy).builder.cs();
}

const Keypair& rln_v2_keypair(std::size_t depth) {
  static std::map<std::size_t, Keypair> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(depth);
  if (it == cache.end()) {
    Rng rng(0x524c4e32 + depth);  // "RLN2" + depth
    const ConstraintSystem cs = rln_v2_constraint_system(depth);
    it = cache.emplace(depth, trusted_setup(cs, rng)).first;
  }
  return it->second;
}

}  // namespace waku::zksnark
