#include "zksnark/rln_circuit.hpp"

#include <map>
#include <mutex>

#include "common/expect.hpp"
#include "hash/poseidon.hpp"
#include "zksnark/gadgets.hpp"

namespace waku::zksnark {

RlnPublicInputs rln_compute_publics(const RlnProverInput& input) {
  const Fr pk = hash::poseidon1(input.sk);
  const Fr a1 = hash::poseidon2(input.sk, input.epoch);
  RlnPublicInputs out;
  out.x = input.x;
  out.y = input.sk + a1 * input.x;
  out.nullifier = hash::poseidon1(a1);
  out.epoch = input.epoch;
  out.root = merkle::compute_root(pk, input.path);
  return out;
}

RlnCircuit build_rln_circuit(const RlnProverInput& input) {
  WAKU_EXPECTS(!input.path.siblings.empty());
  RlnCircuit circuit;
  circuit.publics = rln_compute_publics(input);
  CircuitBuilder& b = circuit.builder;

  // Public inputs first (Groth16 variable layout).
  const Wire x = b.public_input(circuit.publics.x);
  const Wire y = b.public_input(circuit.publics.y);
  const Wire nullifier = b.public_input(circuit.publics.nullifier);
  const Wire epoch = b.public_input(circuit.publics.epoch);
  const Wire root = b.public_input(circuit.publics.root);

  // Private witness.
  const Wire sk = b.witness(input.sk);

  // (1) membership: pk = Poseidon(sk) sits in the tree under `root`.
  const Wire pk = poseidon1_gadget(b, sk);
  const Wire computed_root = merkle_root_gadget(b, pk, input.path);
  b.assert_equal(computed_root, root, "membership_root");

  // (2) share validity: y = sk + a1 * x, a1 = Poseidon(sk, epoch).
  const Wire a1 = poseidon2_gadget(b, sk, epoch);
  const Wire a1x = b.mul(a1, x, "share_slope_times_x");
  b.assert_equal(CircuitBuilder::add(sk, a1x), y, "share_validity");

  // (3) nullifier correctness: phi = Poseidon(a1).
  const Wire phi = poseidon1_gadget(b, a1);
  b.assert_equal(phi, nullifier, "nullifier_correctness");

  WAKU_ENSURES(circuit.builder.satisfied());
  return circuit;
}

ConstraintSystem rln_constraint_system(std::size_t depth) {
  WAKU_EXPECTS(depth >= 1);
  RlnProverInput dummy;
  dummy.sk = Fr::from_u64(1);
  dummy.path.index = 0;
  dummy.path.siblings.assign(depth, Fr::zero());
  dummy.x = Fr::from_u64(2);
  dummy.epoch = Fr::from_u64(3);
  RlnCircuit circuit = build_rln_circuit(dummy);
  return circuit.builder.cs();
}

const Keypair& rln_keypair(std::size_t depth) {
  static std::map<std::size_t, Keypair> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(depth);
  if (it == cache.end()) {
    // Deterministic ceremony randomness per depth: reproducible benches,
    // and every node in a simulation shares the same artifact.
    Rng rng(0x524c4e00 + depth);  // "RLN" + depth
    const ConstraintSystem cs = rln_constraint_system(depth);
    it = cache.emplace(depth, trusted_setup(cs, rng)).first;
  }
  return it->second;
}

}  // namespace waku::zksnark
