#include "zksnark/circuit.hpp"

#include "common/expect.hpp"

namespace waku::zksnark {

Wire CircuitBuilder::allocate(const Fr& value, bool is_public) {
  const VarIndex v =
      is_public ? cs_.allocate_public() : cs_.allocate_private();
  WAKU_ASSERT(v == assignment_.size());
  assignment_.push_back(value);
  return Wire{LinearCombination::variable(v), value};
}

Wire CircuitBuilder::public_input(const Fr& value) {
  return allocate(value, /*is_public=*/true);
}

Wire CircuitBuilder::witness(const Fr& value) {
  return allocate(value, /*is_public=*/false);
}

Wire CircuitBuilder::constant(const Fr& c) {
  return Wire{LinearCombination::constant(c), c};
}

Wire CircuitBuilder::add(const Wire& a, const Wire& b) {
  return Wire{a.lc + b.lc, a.value + b.value};
}

Wire CircuitBuilder::sub(const Wire& a, const Wire& b) {
  return Wire{a.lc - b.lc, a.value - b.value};
}

Wire CircuitBuilder::scale(const Wire& a, const Fr& k) {
  return Wire{a.lc.scaled(k), a.value * k};
}

Wire CircuitBuilder::mul(const Wire& a, const Wire& b,
                         const std::string& note) {
  const Wire out = witness(a.value * b.value);
  cs_.enforce(a.lc, b.lc, out.lc, note.empty() ? "mul" : note);
  return out;
}

Wire CircuitBuilder::materialize(const Wire& a, const std::string& note) {
  const Wire out = witness(a.value);
  cs_.enforce(a.lc, LinearCombination::constant(Fr::one()), out.lc,
              note.empty() ? "materialize" : note);
  return out;
}

void CircuitBuilder::assert_equal(const Wire& a, const Wire& b,
                                  const std::string& note) {
  cs_.enforce(a.lc - b.lc, LinearCombination::constant(Fr::one()),
              LinearCombination{}, note.empty() ? "assert_equal" : note);
}

void CircuitBuilder::assert_boolean(const Wire& bit, const std::string& note) {
  // bit * (1 - bit) = 0
  cs_.enforce(bit.lc,
              LinearCombination::constant(Fr::one()) - bit.lc,
              LinearCombination{}, note.empty() ? "boolean" : note);
}

std::pair<Wire, Wire> CircuitBuilder::conditional_swap(const Wire& s,
                                                       const Wire& l,
                                                       const Wire& r) {
  // t = s * (r - l); first = l + t; second = r - t.
  const Wire t = mul(s, sub(r, l), "cond_swap");
  return {add(l, t), sub(r, t)};
}

}  // namespace waku::zksnark
