// Simulated Groth16 (paper §II-B uses real Groth16 [11] with an MPC setup
// [12-15]; see DESIGN.md "Substitutions" for why and how this stands in).
//
// What is real here:
//   * the R1CS relation and witness checking — `prove` refuses to produce a
//     proof for an unsatisfied constraint system;
//   * prover cost, linear in the number of constraints (three
//     random-linear-combination passes standing in for the MSMs);
//   * verifier cost, constant plus O(#public inputs) (the IC accumulation);
//   * constant 128-byte proofs bound to the exact circuit and public
//     inputs.
// What is simulated: the pairing check is replaced by a binding MAC keyed
// with the setup secret (the "toxic waste" analog), making this a
// designated-verifier argument. Soundness against parties who do not hold
// the setup secret matches the deployment model of the simulation, where
// the secret lives only inside the setup artifact.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "zksnark/r1cs.hpp"

namespace waku::zksnark {

/// Raised when proof generation is attempted on an invalid witness or a
/// mismatched circuit.
class ProofError : public std::runtime_error {
 public:
  explicit ProofError(const std::string& what) : std::runtime_error(what) {}
};

/// 128-byte proof: three 32-byte "group element" stand-ins (A, B, C) plus
/// the 32-byte binding tag. Matches Groth16's constant-size property
/// (compressed BN254 Groth16 proofs are 128 bytes as well).
struct Proof {
  std::array<std::uint8_t, 32> a{};
  std::array<std::uint8_t, 32> b{};
  std::array<std::uint8_t, 32> c{};
  std::array<std::uint8_t, 32> binding{};

  [[nodiscard]] Bytes serialize() const;
  static Proof deserialize(BytesView bytes);

  friend bool operator==(const Proof&, const Proof&) = default;

  static constexpr std::size_t kSerializedSize = 128;
};

/// Prover-side setup artifact. Sized like a real proving key: per-constraint
/// and per-variable elements, so serialized size scales with the circuit.
struct ProvingKey {
  Fr circuit_digest;
  std::uint64_t num_constraints = 0;
  std::uint64_t num_variables = 0;
  std::uint64_t num_public = 0;
  std::vector<Fr> a_query;  // one element per constraint
  std::vector<Fr> b_query;
  std::vector<Fr> c_query;
  std::array<std::uint8_t, 32> setup_secret{};

  /// Size of the serialized key — the paper's ~3.89 MB prover-key figure.
  [[nodiscard]] std::size_t serialized_size() const;
  [[nodiscard]] Bytes serialize() const;
};

/// Verifier-side setup artifact: constant-size core plus one element per
/// public input (the IC terms of a real Groth16 verifying key).
struct VerifyingKey {
  Fr circuit_digest;
  std::uint64_t num_public = 0;
  std::vector<Fr> ic;  // num_public + 1 elements
  std::array<std::uint8_t, 32> setup_secret{};

  [[nodiscard]] std::size_t serialized_size() const;
};

struct Keypair {
  ProvingKey pk;
  VerifyingKey vk;
};

/// One-time parameter generation for a circuit (the MPC ceremony analog).
Keypair trusted_setup(const ConstraintSystem& cs, Rng& rng);

/// Generates a proof for `assignment` (layout: [1, publics..., privates...]).
/// Throws ProofError if the witness does not satisfy `cs` or the key does
/// not match the circuit.
Proof prove(const ProvingKey& pk, const ConstraintSystem& cs,
            std::span<const Fr> assignment, Rng& rng);

/// Verifies `proof` against the claimed public inputs. Constant-time in the
/// circuit size; linear in the number of public inputs. Cost-shaped like a
/// real verifier: IC accumulation plus three Miller loops and one final
/// exponentiation (the pairing-product check the binding MAC stands in for).
bool verify(const VerifyingKey& vk, std::span<const Fr> public_inputs,
            const Proof& proof);

/// One (public inputs, proof) pair of a verification batch.
struct BatchEntry {
  std::vector<Fr> public_inputs;
  Proof proof;
};

struct BatchVerifyOutcome {
  /// Per-entry results, same order as the input.
  std::vector<bool> ok;
  /// True when the whole batch was settled by the single aggregated check;
  /// false when a mismatch forced the per-proof fallback pass.
  bool aggregated = false;
};

/// Batched verification via random-linear-combination aggregation: each
/// entry's pairing check is scaled by a fresh random weight from `rng` and
/// the weighted checks are collapsed into one aggregate equation, so the
/// batch shares the C/IC/alpha-beta Miller loops and the final
/// exponentiation; only the per-proof e(A_i, B_i) loop stays per entry.
/// If the aggregate fails, every entry is re-verified individually to
/// isolate the bad proofs (per-proof fallback), so the result vector is
/// always exact. Equivalent to calling verify() per entry, just cheaper
/// in the all-valid common case.
BatchVerifyOutcome verify_batch(const VerifyingKey& vk,
                                std::span<const BatchEntry> entries, Rng& rng);

}  // namespace waku::zksnark
