#include "zksnark/groth16.hpp"

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/sha256.hpp"

namespace waku::zksnark {

namespace {

std::array<std::uint8_t, 32> digest32(BytesView data) {
  const hash::Sha256Digest d = hash::sha256(data);
  std::array<std::uint8_t, 32> out;
  std::copy(d.begin(), d.end(), out.begin());
  return out;
}

// Computes sum_i query[i] * <LC_i, s> over all constraints — the cost-shape
// stand-in for one multi-scalar multiplication pass.
Fr rlc_pass(const std::vector<Constraint>& constraints,
            const std::vector<Fr>& query, std::span<const Fr> assignment,
            int which) {
  Fr acc = Fr::zero();
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const LinearCombination& lc = which == 0   ? constraints[i].a
                                  : which == 1 ? constraints[i].b
                                               : constraints[i].c;
    acc += query[i] * lc.evaluate(assignment);
  }
  return acc;
}

// --- pairing cost model ------------------------------------------------------
// The MAC replaces the pairing algebra (see header), but the verifier's cost
// shape is kept faithful: a real Groth16 verify computes a product of three
// Miller loops followed by one shared final exponentiation. Batch
// verification amortizes everything except the per-proof e(A_i, B_i) loop.
// The chains below are Fr multiplication loops sized so a single verify
// lands in the tens of microseconds — the paper's ~30 ms constant-time
// verification scaled to this simulation's field arithmetic.

constexpr int kMillerLoopIters = 192;
constexpr int kFinalExpIters = 384;

void pairing_work(const Fr& seed, int iters) {
  Fr acc = seed + Fr::one();
  for (int i = 0; i < iters; ++i) acc = acc.square() + seed;
  volatile std::uint64_t sink = acc.mont_repr().limb[0];
  (void)sink;
}

// IC accumulation: the per-public-input work a real verifier performs.
// The accumulator seeds the pairing-cost chains so neither is optimized
// away (binding itself comes from the hashed publics in the MAC).
Fr ic_accumulate(const VerifyingKey& vk, std::span<const Fr> public_inputs) {
  Fr acc = vk.ic[0];
  for (std::size_t i = 0; i < public_inputs.size(); ++i) {
    acc += vk.ic[i + 1] * public_inputs[i];
  }
  return acc;
}

// The designated-verifier MAC over (secret, circuit, publics, proof
// elements) — the value a real pairing check would authenticate.
std::array<std::uint8_t, 32> binding_tag(const VerifyingKey& vk,
                                         std::span<const Fr> public_inputs,
                                         const Proof& proof) {
  ByteWriter w;
  w.write_raw(BytesView(vk.setup_secret.data(), vk.setup_secret.size()));
  w.write_raw(vk.circuit_digest.to_bytes_be());
  w.write_u64(vk.num_public);
  for (const Fr& input : public_inputs) {
    w.write_raw(input.to_bytes_be());
  }
  w.write_raw(BytesView(proof.a.data(), 32));
  w.write_raw(BytesView(proof.b.data(), 32));
  w.write_raw(BytesView(proof.c.data(), 32));
  return digest32(w.data());
}

}  // namespace

Bytes Proof::serialize() const {
  Bytes out;
  out.reserve(kSerializedSize);
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  out.insert(out.end(), binding.begin(), binding.end());
  return out;
}

Proof Proof::deserialize(BytesView bytes) {
  if (bytes.size() != kSerializedSize) {
    throw ProofError("Proof::deserialize: expected 128 bytes");
  }
  Proof p;
  std::copy(bytes.begin() + 0, bytes.begin() + 32, p.a.begin());
  std::copy(bytes.begin() + 32, bytes.begin() + 64, p.b.begin());
  std::copy(bytes.begin() + 64, bytes.begin() + 96, p.c.begin());
  std::copy(bytes.begin() + 96, bytes.begin() + 128, p.binding.begin());
  return p;
}

std::size_t ProvingKey::serialized_size() const {
  // Header + digest + secret + 3 per-constraint queries + 3 per-variable
  // element groups (A/B1/B2 of a real Groth16 pk).
  return 32 + 32 + 3 * 8 + 3 * num_constraints * 32 + 3 * num_variables * 32;
}

Bytes ProvingKey::serialize() const {
  ByteWriter w;
  w.write_raw(circuit_digest.to_bytes_be());
  w.write_raw(BytesView(setup_secret.data(), setup_secret.size()));
  w.write_u64(num_constraints);
  w.write_u64(num_variables);
  w.write_u64(num_public);
  for (const auto& q : {a_query, b_query, c_query}) {
    for (const Fr& e : q) w.write_raw(e.to_bytes_be());
  }
  // Per-variable elements of a real pk (A/B1/B2 queries): deterministic
  // filler derived from the digest, so serialized size is faithful.
  Bytes filler = circuit_digest.to_bytes_be();
  for (std::uint64_t v = 0; v < 3 * num_variables; ++v) {
    w.write_raw(filler);
  }
  return std::move(w).take();
}

std::size_t VerifyingKey::serialized_size() const {
  // alpha/beta/gamma/delta stand-ins + IC elements.
  return 4 * 32 + ic.size() * 32 + 32;
}

Keypair trusted_setup(const ConstraintSystem& cs, Rng& rng) {
  Keypair kp;
  kp.pk.circuit_digest = cs.digest();
  kp.pk.num_constraints = cs.num_constraints();
  kp.pk.num_variables = cs.num_variables();
  kp.pk.num_public = cs.num_public();
  kp.pk.a_query.reserve(cs.num_constraints());
  kp.pk.b_query.reserve(cs.num_constraints());
  kp.pk.c_query.reserve(cs.num_constraints());
  for (std::size_t i = 0; i < cs.num_constraints(); ++i) {
    kp.pk.a_query.push_back(Fr::random(rng));
    kp.pk.b_query.push_back(Fr::random(rng));
    kp.pk.c_query.push_back(Fr::random(rng));
  }
  const Bytes secret = rng.next_bytes(32);
  std::copy(secret.begin(), secret.end(), kp.pk.setup_secret.begin());

  kp.vk.circuit_digest = kp.pk.circuit_digest;
  kp.vk.num_public = kp.pk.num_public;
  kp.vk.setup_secret = kp.pk.setup_secret;
  kp.vk.ic.reserve(kp.vk.num_public + 1);
  for (std::uint64_t i = 0; i <= kp.vk.num_public; ++i) {
    kp.vk.ic.push_back(Fr::random(rng));
  }
  return kp;
}

Proof prove(const ProvingKey& pk, const ConstraintSystem& cs,
            std::span<const Fr> assignment, Rng& rng) {
  if (pk.circuit_digest != cs.digest()) {
    throw ProofError("prove: proving key does not match circuit");
  }
  if (assignment.size() != cs.num_variables()) {
    throw ProofError("prove: assignment size mismatch");
  }
  std::string violation;
  if (!cs.is_satisfied(assignment, &violation)) {
    throw ProofError("prove: witness does not satisfy circuit at '" +
                     violation + "'");
  }

  // MSM-shaped work: three passes over every constraint term.
  const Fr ra = rlc_pass(cs.constraints(), pk.a_query, assignment, 0);
  const Fr rb = rlc_pass(cs.constraints(), pk.b_query, assignment, 1);
  const Fr rc = rlc_pass(cs.constraints(), pk.c_query, assignment, 2);

  const Fr rho = Fr::random(rng);  // proof randomization (zero-knowledge)

  auto element = [&](char tag, const Fr& v) {
    ByteWriter w;
    w.write_u8(static_cast<std::uint8_t>(tag));
    w.write_raw(pk.circuit_digest.to_bytes_be());
    w.write_raw(v.to_bytes_be());
    w.write_raw(rho.to_bytes_be());
    return digest32(w.data());
  };

  Proof proof;
  proof.a = element('A', ra);
  proof.b = element('B', rb);
  proof.c = element('C', rc);

  // Binding tag over (secret, circuit, public inputs, proof elements).
  ByteWriter w;
  w.write_raw(BytesView(pk.setup_secret.data(), pk.setup_secret.size()));
  w.write_raw(pk.circuit_digest.to_bytes_be());
  w.write_u64(pk.num_public);
  for (std::size_t i = 1; i <= pk.num_public; ++i) {
    w.write_raw(assignment[i].to_bytes_be());
  }
  w.write_raw(BytesView(proof.a.data(), 32));
  w.write_raw(BytesView(proof.b.data(), 32));
  w.write_raw(BytesView(proof.c.data(), 32));
  proof.binding = digest32(w.data());
  return proof;
}

bool verify(const VerifyingKey& vk, std::span<const Fr> public_inputs,
            const Proof& proof) {
  if (public_inputs.size() != vk.num_public) return false;

  const Fr acc = ic_accumulate(vk, public_inputs);
  const std::array<std::uint8_t, 32> expected =
      binding_tag(vk, public_inputs, proof);

  // Three Miller loops (A·B, C·delta, IC·gamma) + one final exponentiation.
  pairing_work(acc, 3 * kMillerLoopIters + kFinalExpIters);

  return ct_equal(BytesView(expected.data(), expected.size()),
                  BytesView(proof.binding.data(), proof.binding.size()));
}

BatchVerifyOutcome verify_batch(const VerifyingKey& vk,
                                std::span<const BatchEntry> entries, Rng& rng) {
  BatchVerifyOutcome out;
  out.ok.assign(entries.size(), false);
  if (entries.empty()) {
    out.aggregated = true;
    return out;
  }
  if (entries.size() == 1) {
    out.ok[0] = verify(vk, entries[0].public_inputs, entries[0].proof);
    // A batch of one is its own aggregate: success settles in one check,
    // failure is (trivially) isolated — keeps the caller's invariant that
    // every verified window counts as exactly one of aggregated/fallback.
    out.aggregated = out.ok[0];
    return out;
  }

  // Per-entry leg: IC accumulation, binding tag, and the e(A_i, B_i) Miller
  // loop, each folded into the aggregate with fresh random weights so no
  // adversarial combination of wrong tags can cancel out. Tags are folded
  // as two 16-byte halves — each canonical (< r), so the embedding is
  // injective over the full 32 bytes. Reducing whole 32-byte tags mod r
  // would be malleable: tag + r has the same residue, and the aggregate
  // would accept a byte-tampered binding that per-proof verify rejects.
  Fr agg_expected = Fr::zero();
  Fr agg_actual = Fr::zero();
  bool any_shape_error = false;
  const auto fold = [](Fr& acc, const std::array<std::uint8_t, 32>& tag,
                       const Fr& w_lo, const Fr& w_hi) {
    acc += w_lo * Fr::from_bytes_reduce(BytesView(tag.data(), 16));
    acc += w_hi * Fr::from_bytes_reduce(BytesView(tag.data() + 16, 16));
  };
  for (const BatchEntry& entry : entries) {
    if (entry.public_inputs.size() != vk.num_public) {
      any_shape_error = true;  // cannot even form this entry's check
      continue;
    }
    const Fr acc = ic_accumulate(vk, entry.public_inputs);
    const std::array<std::uint8_t, 32> expected =
        binding_tag(vk, entry.public_inputs, entry.proof);
    const Fr w_lo = Fr::random(rng);
    const Fr w_hi = Fr::random(rng);
    fold(agg_expected, expected, w_lo, w_hi);
    fold(agg_actual, entry.proof.binding, w_lo, w_hi);
    pairing_work(acc, kMillerLoopIters);
  }

  // Shared legs: the RLC collapses every C·delta and IC·gamma pairing into
  // one Miller loop each, and the whole product shares a single final
  // exponentiation.
  pairing_work(agg_expected + agg_actual,
               2 * kMillerLoopIters + kFinalExpIters);

  if (!any_shape_error && agg_expected == agg_actual) {
    out.ok.assign(entries.size(), true);
    out.aggregated = true;
    return out;
  }

  // Aggregate mismatch: some proof is bad. Fall back to per-proof
  // verification to isolate it — correctness over throughput here.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out.ok[i] = verify(vk, entries[i].public_inputs, entries[i].proof);
  }
  return out;
}

}  // namespace waku::zksnark
