#include "zksnark/gadgets.hpp"

#include "common/expect.hpp"
#include "hash/poseidon.hpp"

namespace waku::zksnark {

using hash::PoseidonParams;

Wire sbox_gadget(CircuitBuilder& b, const Wire& x) {
  const Wire x2 = b.mul(x, x, "sbox_x2");
  const Wire x4 = b.mul(x2, x2, "sbox_x4");
  return b.mul(x4, x, "sbox_x5");
}

void poseidon_permute_gadget(CircuitBuilder& b, std::vector<Wire>& state) {
  const std::size_t t = state.size();
  const PoseidonParams& p = hash::poseidon_params(t);
  const std::size_t half_full = p.full_rounds / 2;

  auto mix = [&](std::vector<Wire>& s) {
    std::vector<Wire> next;
    next.reserve(t);
    for (std::size_t i = 0; i < t; ++i) {
      Wire acc = CircuitBuilder::constant(Fr::zero());
      for (std::size_t j = 0; j < t; ++j) {
        acc = CircuitBuilder::add(acc, CircuitBuilder::scale(s[j], p.m(i, j)));
      }
      next.push_back(acc);
    }
    s = std::move(next);
  };

  std::size_t round = 0;
  for (std::size_t r = 0; r < half_full; ++r, ++round) {
    for (std::size_t i = 0; i < t; ++i) {
      const Wire arc =
          CircuitBuilder::add(state[i], CircuitBuilder::constant(p.rc(round, i)));
      state[i] = sbox_gadget(b, arc);
    }
    mix(state);
  }
  for (std::size_t r = 0; r < p.partial_rounds; ++r, ++round) {
    for (std::size_t i = 0; i < t; ++i) {
      state[i] = CircuitBuilder::add(state[i],
                                     CircuitBuilder::constant(p.rc(round, i)));
    }
    state[0] = sbox_gadget(b, state[0]);
    // Materialize the linear lanes so combination sizes stay bounded across
    // the 56+ partial rounds (cost: t-1 constraints per round).
    for (std::size_t i = 1; i < t; ++i) {
      state[i] = b.materialize(state[i], "poseidon_partial_lane");
    }
    mix(state);
  }
  for (std::size_t r = 0; r < half_full; ++r, ++round) {
    for (std::size_t i = 0; i < t; ++i) {
      const Wire arc =
          CircuitBuilder::add(state[i], CircuitBuilder::constant(p.rc(round, i)));
      state[i] = sbox_gadget(b, arc);
    }
    mix(state);
  }
}

Wire poseidon_gadget(CircuitBuilder& b, std::span<const Wire> inputs) {
  WAKU_EXPECTS(!inputs.empty() && inputs.size() <= 4);
  std::vector<Wire> state;
  state.reserve(inputs.size() + 1);
  state.push_back(CircuitBuilder::constant(Fr::zero()));
  for (const Wire& w : inputs) state.push_back(w);
  poseidon_permute_gadget(b, state);
  return state[0];
}

Wire poseidon1_gadget(CircuitBuilder& b, const Wire& a) {
  const std::array<Wire, 1> in{a};
  return poseidon_gadget(b, in);
}

Wire poseidon2_gadget(CircuitBuilder& b, const Wire& a, const Wire& c) {
  const std::array<Wire, 2> in{a, c};
  return poseidon_gadget(b, in);
}

std::vector<Wire> bits_gadget(CircuitBuilder& b, const Wire& value,
                              std::size_t bits) {
  WAKU_EXPECTS(bits >= 1 && bits <= 64);
  // Witness values must fit: extract the low 64 bits of the canonical form.
  const std::uint64_t v = value.value.to_u256().limb[0];
  WAKU_EXPECTS(value.value.to_u256() == ff::U256{v});
  WAKU_EXPECTS(bits == 64 || v < (std::uint64_t{1} << bits));

  std::vector<Wire> out;
  out.reserve(bits);
  Wire sum = CircuitBuilder::constant(Fr::zero());
  Fr weight = Fr::one();
  for (std::size_t i = 0; i < bits; ++i) {
    const Wire bit = b.witness(((v >> i) & 1) ? Fr::one() : Fr::zero());
    b.assert_boolean(bit, "range_bit");
    sum = CircuitBuilder::add(sum, CircuitBuilder::scale(bit, weight));
    weight += weight;
    out.push_back(bit);
  }
  b.assert_equal(sum, value, "range_recompose");
  return out;
}

void assert_less_than(CircuitBuilder& b, const Wire& a, const Wire& b_bound,
                      std::size_t bits) {
  WAKU_EXPECTS(bits >= 1 && bits <= 62);
  // t = a + 2^bits - b; a < b  <=>  t < 2^bits  <=>  bit `bits` of t is 0.
  const Wire t = CircuitBuilder::add(
      CircuitBuilder::sub(a, b_bound),
      CircuitBuilder::constant(Fr::from_u64(std::uint64_t{1} << bits)));
  const std::vector<Wire> t_bits = bits_gadget(b, t, bits + 1);
  b.assert_equal(t_bits[bits], CircuitBuilder::constant(Fr::zero()),
                 "less_than_top_bit");
}

Wire merkle_root_gadget(CircuitBuilder& b, const Wire& leaf,
                        const merkle::MerklePath& path) {
  Wire cur = leaf;
  for (std::size_t l = 0; l < path.siblings.size(); ++l) {
    const bool bit_val = (path.index >> l) & 1;
    const Wire bit = b.witness(bit_val ? Fr::one() : Fr::zero());
    b.assert_boolean(bit, "merkle_index_bit");
    const Wire sibling = b.witness(path.siblings[l]);
    // bit == 0: cur is the left child; bit == 1: sibling is.
    const auto [left, right] = b.conditional_swap(bit, cur, sibling);
    cur = poseidon2_gadget(b, left, right);
  }
  return cur;
}

}  // namespace waku::zksnark
