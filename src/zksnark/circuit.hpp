// Circuit builder: simultaneously constructs R1CS constraints and the
// witness assignment, gadget-style. Linear operations are free (folded into
// linear combinations); each multiplication or materialization costs one
// constraint, mirroring how Semaphore/RLN circuits are written in circom.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "zksnark/r1cs.hpp"

namespace waku::zksnark {

/// A value flowing through the circuit: a linear combination over allocated
/// variables plus its concrete witness value.
struct Wire {
  LinearCombination lc;
  Fr value;
};

class CircuitBuilder {
 public:
  CircuitBuilder() { assignment_.push_back(Fr::one()); }

  /// Allocates a public input carrying `value`.
  Wire public_input(const Fr& value);

  /// Allocates a private witness variable carrying `value`.
  Wire witness(const Fr& value);

  /// The constant-one wire scaled by c.
  static Wire constant(const Fr& c);

  // Linear operations: no constraints added.
  static Wire add(const Wire& a, const Wire& b);
  static Wire sub(const Wire& a, const Wire& b);
  static Wire scale(const Wire& a, const Fr& k);

  /// a * b; allocates one product variable and one constraint.
  Wire mul(const Wire& a, const Wire& b, const std::string& note = {});

  /// Returns a single-variable wire equal to `a` (one constraint). Used to
  /// stop linear-combination growth in iterated constructions (Poseidon).
  Wire materialize(const Wire& a, const std::string& note = {});

  /// Enforces a == b (one constraint).
  void assert_equal(const Wire& a, const Wire& b, const std::string& note = {});

  /// Enforces that `bit` is 0 or 1 (one constraint).
  void assert_boolean(const Wire& bit, const std::string& note = {});

  /// (s == 0) ? (l, r) : (r, l) — the Merkle path ordering switch.
  /// Costs one constraint; `s` must already be boolean-constrained.
  std::pair<Wire, Wire> conditional_swap(const Wire& s, const Wire& l,
                                         const Wire& r);

  [[nodiscard]] const ConstraintSystem& cs() const { return cs_; }
  [[nodiscard]] std::span<const Fr> assignment() const { return assignment_; }

  /// Sanity: the built witness satisfies the built constraints.
  [[nodiscard]] bool satisfied(std::string* first_violation = nullptr) const {
    return cs_.is_satisfied(assignment_, first_violation);
  }

 private:
  Wire allocate(const Fr& value, bool is_public);

  ConstraintSystem cs_;
  std::vector<Fr> assignment_;
};

}  // namespace waku::zksnark
