#include "zksnark/r1cs.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/sha256.hpp"

namespace waku::zksnark {

LinearCombination LinearCombination::constant(const Fr& c) {
  return variable(kOneVar, c);
}

LinearCombination LinearCombination::variable(VarIndex v, const Fr& coeff) {
  LinearCombination lc;
  lc.add_term(v, coeff);
  return lc;
}

LinearCombination& LinearCombination::add_term(VarIndex v, const Fr& coeff) {
  if (coeff.is_zero()) return *this;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const auto& term, VarIndex idx) { return term.first < idx; });
  if (it != terms_.end() && it->first == v) {
    it->second += coeff;
    if (it->second.is_zero()) terms_.erase(it);
  } else {
    terms_.insert(it, {v, coeff});
  }
  return *this;
}

LinearCombination LinearCombination::operator+(
    const LinearCombination& o) const {
  LinearCombination out = *this;
  for (const auto& [v, c] : o.terms_) out.add_term(v, c);
  return out;
}

LinearCombination LinearCombination::operator-(
    const LinearCombination& o) const {
  LinearCombination out = *this;
  for (const auto& [v, c] : o.terms_) out.add_term(v, c.neg());
  return out;
}

LinearCombination LinearCombination::scaled(const Fr& k) const {
  LinearCombination out;
  if (k.is_zero()) return out;
  for (const auto& [v, c] : terms_) out.terms_.emplace_back(v, c * k);
  return out;
}

Fr LinearCombination::evaluate(std::span<const Fr> assignment) const {
  Fr acc = Fr::zero();
  for (const auto& [v, c] : terms_) {
    WAKU_ASSERT(v < assignment.size());
    acc += c * assignment[v];
  }
  return acc;
}

VarIndex ConstraintSystem::allocate_public() {
  WAKU_EXPECTS(!private_allocated_);
  ++num_public_;
  return static_cast<VarIndex>(num_vars_++);
}

VarIndex ConstraintSystem::allocate_private() {
  private_allocated_ = true;
  return static_cast<VarIndex>(num_vars_++);
}

void ConstraintSystem::enforce(LinearCombination a, LinearCombination b,
                               LinearCombination c, std::string annotation) {
  constraints_.push_back(Constraint{std::move(a), std::move(b), std::move(c),
                                    std::move(annotation)});
}

bool ConstraintSystem::is_satisfied(std::span<const Fr> assignment,
                                    std::string* first_violation) const {
  if (assignment.size() != num_vars_ || assignment.empty() ||
      assignment[0] != Fr::one()) {
    if (first_violation) *first_violation = "malformed assignment";
    return false;
  }
  for (const Constraint& cst : constraints_) {
    const Fr a = cst.a.evaluate(assignment);
    const Fr b = cst.b.evaluate(assignment);
    const Fr c = cst.c.evaluate(assignment);
    if (a * b != c) {
      if (first_violation) {
        *first_violation =
            cst.annotation.empty() ? "<unannotated>" : cst.annotation;
      }
      return false;
    }
  }
  return true;
}

Fr ConstraintSystem::digest() const {
  ByteWriter w;
  w.write_u64(num_vars_);
  w.write_u64(num_public_);
  w.write_u64(constraints_.size());
  auto write_lc = [&w](const LinearCombination& lc) {
    w.write_u32(static_cast<std::uint32_t>(lc.terms().size()));
    for (const auto& [v, c] : lc.terms()) {
      w.write_u32(v);
      w.write_raw(c.to_bytes_be());
    }
  };
  for (const Constraint& cst : constraints_) {
    write_lc(cst.a);
    write_lc(cst.b);
    write_lc(cst.c);
  }
  return Fr::from_bytes_reduce(hash::sha256_bytes(w.data()));
}

}  // namespace waku::zksnark
