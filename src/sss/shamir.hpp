// Shamir secret sharing over the BN254 scalar field (paper §II-B, [8]).
//
// RLN uses the degree-1 special case: a member publishing a message reveals
// one point (x, y) on the line y = sk + a1·x, where a1 = H(sk, epoch).
// Two messages in the same epoch reveal two distinct points, which uniquely
// reconstruct the line and hence sk = line(0). The general (k, n) scheme is
// provided as well, both for completeness and to property-test the
// interpolation machinery the slashing path depends on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ff/fr.hpp"

namespace waku::sss {

using ff::Fr;

/// One evaluation point of a sharing polynomial.
struct Share {
  Fr x;
  Fr y;

  friend bool operator==(const Share&, const Share&) = default;
};

/// Splits `secret` into n shares, any k of which reconstruct it.
/// Requires 1 <= k <= n. Coefficients are drawn from `rng`.
std::vector<Share> split(const Fr& secret, std::size_t k, std::size_t n,
                         Rng& rng);

/// Reconstructs the secret (polynomial evaluated at x=0) from exactly k
/// shares by Lagrange interpolation. Shares must have pairwise distinct x
/// coordinates; throws ContractViolation otherwise.
Fr reconstruct(std::span<const Share> shares);

/// Evaluates the RLN degree-1 polynomial: y = secret + slope * x.
Fr rln_share_y(const Fr& secret, const Fr& slope, const Fr& x);

/// Recovers the secret from two distinct points on the RLN line:
/// sk = (y1·x2 − y2·x1) / (x2 − x1). Requires s1.x != s2.x.
Fr rln_recover_secret(const Share& s1, const Share& s2);

}  // namespace waku::sss
