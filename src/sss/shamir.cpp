#include "sss/shamir.hpp"

#include "common/expect.hpp"

namespace waku::sss {

std::vector<Share> split(const Fr& secret, std::size_t k, std::size_t n,
                         Rng& rng) {
  WAKU_EXPECTS(k >= 1 && k <= n);
  // Polynomial p(x) = secret + c1 x + ... + c_{k-1} x^{k-1}.
  std::vector<Fr> coeffs;
  coeffs.reserve(k);
  coeffs.push_back(secret);
  for (std::size_t i = 1; i < k; ++i) coeffs.push_back(Fr::random(rng));

  std::vector<Share> shares;
  shares.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const Fr x = Fr::from_u64(i);
    // Horner evaluation.
    Fr y = Fr::zero();
    for (std::size_t j = coeffs.size(); j-- > 0;) {
      y = y * x + coeffs[j];
    }
    shares.push_back(Share{x, y});
  }
  return shares;
}

Fr reconstruct(std::span<const Share> shares) {
  WAKU_EXPECTS(!shares.empty());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      WAKU_EXPECTS(shares[i].x != shares[j].x);
    }
  }
  // Lagrange interpolation evaluated at x = 0:
  //   p(0) = sum_i y_i * prod_{j != i} x_j / (x_j - x_i)
  Fr secret = Fr::zero();
  for (std::size_t i = 0; i < shares.size(); ++i) {
    Fr num = Fr::one();
    Fr den = Fr::one();
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      num *= shares[j].x;
      den *= shares[j].x - shares[i].x;
    }
    secret += shares[i].y * num * den.inverse();
  }
  return secret;
}

Fr rln_share_y(const Fr& secret, const Fr& slope, const Fr& x) {
  return secret + slope * x;
}

Fr rln_recover_secret(const Share& s1, const Share& s2) {
  WAKU_EXPECTS(s1.x != s2.x);
  // Line through (x1,y1),(x2,y2) evaluated at 0.
  const Fr num = s1.y * s2.x - s2.y * s1.x;
  const Fr den = s2.x - s1.x;
  return num * den.inverse();
}

}  // namespace waku::sss
