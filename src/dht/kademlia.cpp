#include "dht/kademlia.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/sha256.hpp"

namespace waku::dht {

namespace {

enum class DhtFrame : std::uint8_t {
  kFindNode = 1,   // lookup_id u64, target key 32B
  kNodes = 2,      // lookup_id u64, u32 n, n * u32 node id
  kStore = 3,      // key 32B, value bytes
  kFindValue = 4,  // lookup_id u64, key 32B
  kValue = 5,      // lookup_id u64, value bytes
};

Key key_from_digest(const hash::Sha256Digest& digest) {
  Key key;
  std::copy(digest.begin(), digest.end(), key.begin());
  return key;
}

}  // namespace

Key xor_distance(const Key& a, const Key& b) {
  Key out;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool closer(const Key& a, const Key& b) { return a < b; }

int bucket_index(const Key& distance) {
  for (std::size_t i = 0; i < distance.size(); ++i) {
    if (distance[i] != 0) {
      int bit = 7;
      while (((distance[i] >> bit) & 1) == 0) --bit;
      return static_cast<int>((31 - i) * 8 + static_cast<std::size_t>(bit));
    }
  }
  return -1;
}

Key key_of_node(net::NodeId id) {
  ByteWriter w;
  w.write_string("dht-node");
  w.write_u32(id);
  return key_from_digest(hash::sha256(w.data()));
}

Key key_of_content(BytesView content) {
  Bytes tagged = to_bytes("dht-content:");
  tagged.insert(tagged.end(), content.begin(), content.end());
  return key_from_digest(hash::sha256(tagged));
}

DhtNode::DhtNode(net::Network& network, DhtConfig config)
    : network_(network),
      config_(config),
      id_(network.add_node(this)),
      key_(key_of_node(id_)),
      buckets_(256) {}

void DhtNode::observe_peer(net::NodeId peer) {
  if (peer == id_) return;
  const int idx = bucket_index(xor_distance(key_, key_of_node(peer)));
  if (idx < 0) return;
  auto& bucket = buckets_[static_cast<std::size_t>(idx)];
  const auto it = std::find(bucket.begin(), bucket.end(), peer);
  if (it != bucket.end()) {
    // Move to the tail (most recently seen).
    bucket.erase(it);
    bucket.push_back(peer);
    return;
  }
  if (bucket.size() < config_.k) {
    bucket.push_back(peer);
  }
  // Full bucket: drop the newcomer (simplified eviction; no ping).
}

std::size_t DhtNode::known_peers() const {
  std::size_t n = 0;
  for (const auto& bucket : buckets_) n += bucket.size();
  return n;
}

std::vector<net::NodeId> DhtNode::closest_known(const Key& target,
                                                std::size_t count) const {
  std::vector<net::NodeId> all;
  for (const auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  std::sort(all.begin(), all.end(), [&target](net::NodeId a, net::NodeId b) {
    return closer(xor_distance(key_of_node(a), target),
                  xor_distance(key_of_node(b), target));
  });
  if (all.size() > count) all.resize(count);
  return all;
}

void DhtNode::bootstrap(net::NodeId seed) {
  observe_peer(seed);
  start_lookup(key_, /*want_value=*/false, nullptr,
               [](std::vector<net::NodeId>) {});
}

void DhtNode::put(const Key& key, Bytes value, PutCallback done) {
  start_lookup(
      key, /*want_value=*/false, nullptr,
      [this, key, value = std::move(value),
       done = std::move(done)](std::vector<net::NodeId> nodes) {
        // Replicate to the k closest, counting ourselves as a candidate.
        std::vector<std::pair<Key, net::NodeId>> candidates;
        candidates.reserve(nodes.size() + 1);
        for (const net::NodeId n : nodes) {
          candidates.emplace_back(xor_distance(key_of_node(n), key), n);
        }
        candidates.emplace_back(xor_distance(key_, key), id_);
        std::sort(candidates.begin(), candidates.end());
        if (candidates.size() > config_.k) candidates.resize(config_.k);

        std::size_t replicas = 0;
        for (const auto& [dist, node] : candidates) {
          ++replicas;
          if (node == id_) {
            store_[key] = value;
            continue;
          }
          ByteWriter w;
          w.write_u8(static_cast<std::uint8_t>(DhtFrame::kStore));
          w.write_raw(BytesView(key.data(), key.size()));
          w.write_bytes(value);
          network_.send(id_, node, std::move(w).take());
        }
        if (done) done(replicas);
      });
}

void DhtNode::get(const Key& key, GetCallback done) {
  const auto local = store_.find(key);
  if (local != store_.end()) {
    done(local->second);
    return;
  }
  start_lookup(key, /*want_value=*/true, std::move(done), nullptr);
}

void DhtNode::start_lookup(
    const Key& target, bool want_value, GetCallback on_value,
    std::function<void(std::vector<net::NodeId>)> on_nodes) {
  const std::uint64_t lookup_id = next_lookup_id_++;
  Lookup lookup;
  lookup.target = target;
  lookup.want_value = want_value;
  lookup.shortlist = closest_known(target, config_.k * 2);
  lookup.on_value = std::move(on_value);
  lookup.on_nodes = std::move(on_nodes);
  lookups_.emplace(lookup_id, std::move(lookup));
  advance_lookup(lookup_id);
}

void DhtNode::advance_lookup(std::uint64_t lookup_id) {
  const auto it = lookups_.find(lookup_id);
  if (it == lookups_.end() || it->second.finished) return;
  Lookup& lookup = it->second;

  // Query up to alpha unqueried nodes among the k closest.
  std::size_t considered = 0;
  for (const net::NodeId node : lookup.shortlist) {
    if (considered >= config_.k) break;
    ++considered;
    if (lookup.in_flight >= config_.alpha) return;
    if (std::find(lookup.queried.begin(), lookup.queried.end(), node) !=
        lookup.queried.end()) {
      continue;
    }
    lookup.queried.push_back(node);
    ++lookup.in_flight;
    ByteWriter w;
    w.write_u8(static_cast<std::uint8_t>(
        lookup.want_value ? DhtFrame::kFindValue : DhtFrame::kFindNode));
    w.write_u64(lookup_id);
    w.write_raw(BytesView(lookup.target.data(), lookup.target.size()));
    network_.send(id_, node, std::move(w).take());
  }
  if (lookup.in_flight == 0) {
    finish_lookup(lookup_id, std::nullopt);
  }
}

void DhtNode::finish_lookup(std::uint64_t lookup_id,
                            std::optional<Bytes> value) {
  const auto it = lookups_.find(lookup_id);
  if (it == lookups_.end() || it->second.finished) return;
  Lookup& lookup = it->second;
  lookup.finished = true;
  if (lookup.want_value) {
    if (lookup.on_value) lookup.on_value(std::move(value));
  } else if (lookup.on_nodes) {
    std::vector<net::NodeId> closest = lookup.shortlist;
    if (closest.size() > config_.k) closest.resize(config_.k);
    lookup.on_nodes(std::move(closest));
  }
  lookups_.erase(it);
}

void DhtNode::on_message(net::NodeId from, BytesView payload) {
  observe_peer(from);
  ByteReader r(payload);
  const auto type = static_cast<DhtFrame>(r.read_u8());
  switch (type) {
    case DhtFrame::kFindNode:
    case DhtFrame::kFindValue: {
      const std::uint64_t lookup_id = r.read_u64();
      Key target;
      const Bytes raw = r.read_raw(32);
      std::copy(raw.begin(), raw.end(), target.begin());

      if (type == DhtFrame::kFindValue) {
        const auto it = store_.find(target);
        if (it != store_.end()) {
          ByteWriter w;
          w.write_u8(static_cast<std::uint8_t>(DhtFrame::kValue));
          w.write_u64(lookup_id);
          w.write_bytes(it->second);
          network_.send(id_, from, std::move(w).take());
          return;
        }
      }
      ByteWriter w;
      w.write_u8(static_cast<std::uint8_t>(DhtFrame::kNodes));
      w.write_u64(lookup_id);
      const auto nodes = closest_known(target, config_.k);
      w.write_u32(static_cast<std::uint32_t>(nodes.size()));
      for (const net::NodeId n : nodes) w.write_u32(n);
      network_.send(id_, from, std::move(w).take());
      break;
    }
    case DhtFrame::kNodes: {
      const std::uint64_t lookup_id = r.read_u64();
      const std::uint32_t n = r.read_u32();
      const auto it = lookups_.find(lookup_id);
      std::vector<net::NodeId> received;
      for (std::uint32_t i = 0; i < n; ++i) {
        received.push_back(r.read_u32());
      }
      for (const net::NodeId node : received) observe_peer(node);
      if (it == lookups_.end() || it->second.finished) return;
      Lookup& lookup = it->second;
      --lookup.in_flight;
      for (const net::NodeId node : received) {
        if (node == id_) continue;
        if (std::find(lookup.shortlist.begin(), lookup.shortlist.end(),
                      node) == lookup.shortlist.end()) {
          lookup.shortlist.push_back(node);
        }
      }
      const Key target = lookup.target;
      std::sort(lookup.shortlist.begin(), lookup.shortlist.end(),
                [&target](net::NodeId a, net::NodeId b) {
                  return closer(xor_distance(key_of_node(a), target),
                                xor_distance(key_of_node(b), target));
                });
      // Finished when the k closest have all been queried.
      bool all_queried = true;
      for (std::size_t i = 0;
           i < std::min(config_.k, lookup.shortlist.size()); ++i) {
        if (std::find(lookup.queried.begin(), lookup.queried.end(),
                      lookup.shortlist[i]) == lookup.queried.end()) {
          all_queried = false;
          break;
        }
      }
      if (all_queried && lookup.in_flight == 0) {
        finish_lookup(lookup_id, std::nullopt);
      } else {
        advance_lookup(lookup_id);
      }
      break;
    }
    case DhtFrame::kStore: {
      Key key;
      const Bytes raw = r.read_raw(32);
      std::copy(raw.begin(), raw.end(), key.begin());
      store_[key] = r.read_bytes();
      break;
    }
    case DhtFrame::kValue: {
      const std::uint64_t lookup_id = r.read_u64();
      finish_lookup(lookup_id, r.read_bytes());
      break;
    }
  }
}

}  // namespace waku::dht
