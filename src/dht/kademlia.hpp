// Kademlia-style distributed hash table over the simulated network.
//
// This is the substrate for the paper's §IV-A future-work direction:
// "replace the membership contract with a distributed group management
// scheme e.g., through distributed hash tables ... to address possible
// performance issues that the interaction with the public Ethereum
// blockchain may cause" (registration latency bounded by block mining).
//
// Implements the classic primitives: 256-bit XOR metric, k-buckets,
// FIND_NODE / STORE / FIND_VALUE RPCs, and iterative lookups with
// parallelism alpha. Values are replicated to the k closest nodes.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/network.hpp"

namespace waku::dht {

/// 256-bit DHT key.
using Key = std::array<std::uint8_t, 32>;

/// XOR distance between keys.
Key xor_distance(const Key& a, const Key& b);

/// Lexicographic comparison of distances (smaller = closer).
bool closer(const Key& a, const Key& b);

/// Index of the highest set bit of a distance (bucket index), -1 if zero.
int bucket_index(const Key& distance);

/// Key of a node id (hash of the id), or of arbitrary content.
Key key_of_node(net::NodeId id);
Key key_of_content(BytesView content);

struct DhtConfig {
  std::size_t k = 8;      ///< bucket size / replication factor
  std::size_t alpha = 3;  ///< lookup parallelism
};

class DhtNode : public net::NetNode {
 public:
  using GetCallback = std::function<void(std::optional<Bytes>)>;
  using PutCallback = std::function<void(std::size_t replicas)>;

  DhtNode(net::Network& network, DhtConfig config = {});

  /// Introduces this node to the network via `seed` (a lookup for our own
  /// key, populating buckets on both sides).
  void bootstrap(net::NodeId seed);

  /// Stores `value` on the k nodes closest to `key`.
  void put(const Key& key, Bytes value, PutCallback done = nullptr);

  /// Iterative FIND_VALUE.
  void get(const Key& key, GetCallback done);

  // net::NetNode
  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] const Key& node_key() const { return key_; }
  [[nodiscard]] std::size_t stored_values() const { return store_.size(); }
  [[nodiscard]] std::size_t known_peers() const;

 private:
  struct Lookup {
    Key target;
    bool want_value = false;
    std::vector<net::NodeId> shortlist;  // sorted by distance to target
    std::vector<net::NodeId> queried;
    std::size_t in_flight = 0;
    GetCallback on_value;
    std::function<void(std::vector<net::NodeId>)> on_nodes;
    bool finished = false;
  };

  void observe_peer(net::NodeId peer);
  std::vector<net::NodeId> closest_known(const Key& target,
                                         std::size_t count) const;
  void start_lookup(const Key& target, bool want_value, GetCallback on_value,
                    std::function<void(std::vector<net::NodeId>)> on_nodes);
  void advance_lookup(std::uint64_t lookup_id);
  void finish_lookup(std::uint64_t lookup_id, std::optional<Bytes> value);

  net::Network& network_;
  DhtConfig config_;
  net::NodeId id_;
  Key key_;
  std::vector<std::vector<net::NodeId>> buckets_;  // 256 k-buckets
  std::map<Key, Bytes> store_;
  std::map<std::uint64_t, Lookup> lookups_;
  std::uint64_t next_lookup_id_ = 1;
};

}  // namespace waku::dht
