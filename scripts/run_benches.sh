#!/usr/bin/env bash
# Builds all bench targets in Release and emits one BENCH_<name>.json per
# bench into the output directory (default: repo root), so successive PRs
# have a comparable perf trajectory.
#
# Usage: scripts/run_benches.sh [--smoke] [output-dir] [bench-name ...]
#   --smoke      tiny workloads (seconds, not minutes): exports
#                WAKU_BENCH_SMOKE=1 (honored by the standalone benches) and
#                caps google-benchmark measuring time
#   output-dir   where the JSON files land (created if missing)
#   bench-name   optional subset (e.g. bench_batch_validation); default all
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
  SMOKE=1
  shift
fi

OUT="${1:-$ROOT}"
shift $(( $# > 0 ? 1 : 0 )) || true
ONLY=("$@")

mkdir -p "$OUT"
cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target benches -j"$(nproc)"

GBENCH_ARGS=()
if [ "$SMOKE" = 1 ]; then
  export WAKU_BENCH_SMOKE=1
  GBENCH_ARGS+=(--benchmark_min_time=0.05)  # plain seconds: gbench 1.7 syntax
fi

want() {
  [ ${#ONLY[@]} -eq 0 ] && return 0
  local name
  for name in "${ONLY[@]}"; do
    [ "$name" = "$1" ] && return 0
  done
  return 1
}

for bin in "$BUILD"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  want "$name" || continue
  echo "== $name"
  case "$name" in
    bench_batch_validation|bench_bootstrap|bench_adversarial|bench_sharding|bench_reshard|bench_parallel_validation|bench_telemetry_overhead|bench_operator_loop|bench_propagation|bench_membership_scale)
      # Standalone benches: each writes its own JSON schema and honors
      # WAKU_BENCH_SMOKE.
      "$bin" "$OUT/BENCH_${name#bench_}.json"
      ;;
    *)
      # google-benchmark benches: native JSON reporter.
      "$bin" --benchmark_format=console \
             --benchmark_out_format=json \
             --benchmark_out="$OUT/BENCH_${name#bench_}.json" \
             "${GBENCH_ARGS[@]}"
      ;;
  esac
done
echo "bench JSONs written to $OUT"
