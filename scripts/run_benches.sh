#!/usr/bin/env bash
# Builds all bench targets in Release and emits one BENCH_<name>.json per
# bench into the output directory (default: repo root), so successive PRs
# have a comparable perf trajectory.
#
# Usage: scripts/run_benches.sh [output-dir] [bench-name ...]
#   output-dir   where the JSON files land (created if missing)
#   bench-name   optional subset (e.g. bench_batch_validation); default all
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"
OUT="${1:-$ROOT}"
shift $(( $# > 0 ? 1 : 0 )) || true
ONLY=("$@")

mkdir -p "$OUT"
cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target benches -j"$(nproc)"

want() {
  [ ${#ONLY[@]} -eq 0 ] && return 0
  local name
  for name in "${ONLY[@]}"; do
    [ "$name" = "$1" ] && return 0
  done
  return 1
}

for bin in "$BUILD"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  want "$name" || continue
  echo "== $name"
  case "$name" in
    bench_batch_validation|bench_bootstrap)
      # Standalone benches: each writes its own JSON schema.
      "$bin" "$OUT/BENCH_${name#bench_}.json"
      ;;
    *)
      # google-benchmark benches: native JSON reporter.
      "$bin" --benchmark_format=console \
             --benchmark_out_format=json \
             --benchmark_out="$OUT/BENCH_${name#bench_}.json"
      ;;
  esac
done
echo "bench JSONs written to $OUT"
