#!/usr/bin/env python3
"""Bench regression guard: diff fresh BENCH_*.json against the committed
baselines and fail on meaningful throughput regressions.

Usage:
    scripts/check_bench_regression.py <fresh-dir> [--baseline-dir DIR]
                                      [--tolerance FRACTION]

Run as the final step of the smoke-bench CI job: scripts/run_benches.sh
--smoke <fresh-dir> produces the fresh JSONs, this script compares them
to the BENCH_*.json committed at the repo root.

What is compared
----------------
By default only MACHINE-PORTABLE metrics: speedup ratios and delivery /
dip fractions, which survive the hop from the baseline machine to a CI
runner. A >tolerance (default 25%) drop in

  * batch-validation speedup (largest batch vs batch=1 msgs/sec),
  * sharding aggregate speedup at 4 shards and at the max shard count,
  * live-reshard honest delivery,
  * parallel-validation executor efficiency at the widest worker count
    (speedup normalized by available cores) and the shard-map memo
    speedup (capped, see the extractor),

  * propagation-tracing reconstruction (complete-tree fraction and
    reachability from BENCH_propagation.json),

or a >tolerance INCREASE in the live-reshard cutover throughput dip,
fails the build. The tracing-overhead fractions are additionally
hard-capped at 3% (HARD_CAPS below). Raw msgs/sec are compared when
WAKU_BENCH_STRICT_ABSOLUTE=1 (same-machine perf tracking; meaningless
across machine classes, so off in CI).

Override knobs
--------------
  WAKU_BENCH_GUARD=off        skip the guard entirely (exit 0) — for
                              landing a PR that knowingly trades
                              throughput, together with refreshed
                              baselines.
  WAKU_BENCH_TOLERANCE=0.40   widen (or tighten) the allowed regression.
  WAKU_BENCH_STRICT_ABSOLUTE=1  also guard raw msgs/sec numbers.

Only the Python standard library is used.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        return None


def batch_validation_metrics(doc):
    """BENCH_batch_validation.json: [{batch_size, msgs_per_sec, ...}]."""
    if not isinstance(doc, list) or not doc:
        return {}
    by_size = {rec["batch_size"]: rec["msgs_per_sec"] for rec in doc}
    base = by_size.get(1)
    # Guard the batch-64 point: it is measured identically at smoke
    # scale (the smoke pool is exactly 64 messages), whereas the larger
    # batch sizes degenerate to a single short run there — the same
    # scale-sensitivity the sharding extractor excludes 8 shards for.
    guard_size = 64 if 64 in by_size else max(by_size)
    metrics = {"batch_validation.msgs_per_sec.best": by_size[max(by_size)]}
    if base:
        metrics["batch_validation.speedup.batch%d_vs_1" % guard_size] = (
            by_size[guard_size] / base
        )
    return metrics


def sharding_metrics(doc):
    """BENCH_sharding.json: {scale: [{shards, aggregate_msgs_per_sec,
    speedup_vs_unsharded}], flood: {...}}."""
    if not isinstance(doc, dict):
        return {}
    # Guard the 4-shard point only: it is meaningful at smoke scale,
    # whereas the 8-shard point degenerates when the smoke pool leaves
    # just a handful of messages per shard (fixed overhead dominates).
    metrics = {}
    for rec in doc.get("scale", []):
        if rec["shards"] == 4:
            metrics["sharding.speedup.4_shards"] = rec["speedup_vs_unsharded"]
            metrics["sharding.msgs_per_sec.4_shards"] = (
                rec["aggregate_msgs_per_sec"]
            )
    return metrics


def reshard_metrics(doc):
    """BENCH_reshard.json: {campaign: {honest_delivery, throughput_dip,
    ...}}."""
    if not isinstance(doc, dict) or "campaign" not in doc:
        return {}
    campaign = doc["campaign"]
    return {
        "reshard.honest_delivery": campaign.get("honest_delivery"),
        "reshard.throughput_dip": campaign.get("throughput_dip"),
    }


def telemetry_overhead_metrics(doc):
    """BENCH_telemetry_overhead.json: {telemetry_off_msgs_per_sec,
    telemetry_on_msgs_per_sec, telemetry_tracing_msgs_per_sec,
    overhead_on_fraction, overhead_tracing_fraction, ...}."""
    if not isinstance(doc, dict) or "overhead_on_fraction" not in doc:
        return {}
    return {
        # Hard-capped (see HARD_CAPS): telemetry may cost at most 3%
        # throughput, on any machine — the fraction is a same-run ratio,
        # so it ports across machine classes like the speedup metrics.
        "telemetry_overhead.on_fraction": doc.get("overhead_on_fraction"),
        "telemetry_overhead.tracing_fraction": doc.get(
            "overhead_tracing_fraction"
        ),
        "telemetry_overhead.recorder_fraction": doc.get(
            "overhead_recorder_fraction"
        ),
        "telemetry_overhead.msgs_per_sec.off": doc.get(
            "telemetry_off_msgs_per_sec"
        ),
    }


def operator_loop_metrics(doc):
    """BENCH_operator_loop.json: {campaign: {operator_triggered, converged,
    honest_delivery, quota_double_deliveries, ...}}."""
    if not isinstance(doc, dict) or "campaign" not in doc:
        return {}
    campaign = doc["campaign"]
    return {
        # Booleans as 0/1 ratios: a fleet whose operator stops triggering
        # or converging regresses by 100%, far past any tolerance.
        "operator_loop.triggered": float(
            bool(campaign.get("operator_triggered"))
        ),
        "operator_loop.converged": float(bool(campaign.get("converged"))),
        "operator_loop.honest_delivery": campaign.get("honest_delivery"),
        # Hard-capped at 0: a single double-delivery through the
        # operator's own cutover is a broken rate-limit domain.
        "operator_loop.quota_double_deliveries": float(
            campaign.get("quota_double_deliveries", 0)
        ),
    }


def membership_scale_metrics(doc):
    """BENCH_membership_scale.json: {registration: [{members,
    batch_speedup, ...}], delta_checkpoint: {size_ratio, ...}, ...}."""
    if not isinstance(doc, dict) or "registration" not in doc:
        return {}
    metrics = {}
    rows = doc.get("registration", [])
    if rows:
        # Guard the smallest member count: present in both smoke and full
        # runs (the full run adds the 1M point on top), so baseline and CI
        # compare the same measurement. The speedup is a same-run ratio —
        # machine-portable like the other speedup metrics.
        smallest = min(rows, key=lambda rec: rec["members"])
        metrics["membership_scale.batch_speedup.min_members"] = smallest.get(
            "batch_speedup"
        )
        metrics["membership_scale.batch_members_per_sec"] = smallest.get(
            "batch_members_per_sec"
        )
    delta = doc.get("delta_checkpoint")
    if isinstance(delta, dict):
        # Pure size ratio of two serialized artifacts: identical on every
        # machine, so a drop means the wire format itself regressed.
        metrics["membership_scale.delta_size_ratio"] = delta.get("size_ratio")
    return metrics


def propagation_metrics(doc):
    """BENCH_propagation.json: {campaign: {complete_tree_fraction,
    propagation_reachability, ...}, overhead: {tracing_fraction}}."""
    if not isinstance(doc, dict) or "campaign" not in doc:
        return {}
    campaign = doc["campaign"]
    overhead = doc.get("overhead", {})
    return {
        # Virtual-time campaign rollups: deterministic on any machine.
        # The bench binary itself enforces the >= 0.99 acceptance floor;
        # this guard tracks drift against the committed baseline.
        "propagation.complete_tree_fraction": campaign.get(
            "complete_tree_fraction"
        ),
        "propagation.reachability": campaign.get("propagation_reachability"),
        # The redundancy ratio is deliberately NOT guarded: it tracks
        # per-shard mesh density, which differs between the smoke and
        # full configs (8 vs 32 hosts per shard), so smoke-vs-baseline
        # comparison would flag config, not regression.
        # Hard-capped (see HARD_CAPS): full-sampling tracing may cost at
        # most 3% campaign wall-clock — a same-run ratio, so it ports
        # across machine classes.
        "propagation.tracing_fraction": overhead.get("tracing_fraction"),
    }


def parallel_validation_metrics(doc):
    """BENCH_parallel_validation.json: {hardware_threads,
    baseline_msgs_per_sec, scaling: [{workers, msgs_per_sec, speedup,
    parallel_efficiency}], shard_map_memo: {memo_speedup, ...}}."""
    if not isinstance(doc, dict) or "scaling" not in doc:
        return {}
    metrics = {
        "parallel_validation.msgs_per_sec.baseline":
            doc.get("baseline_msgs_per_sec"),
    }
    scaling = doc.get("scaling", [])
    if scaling:
        # Guard parallel_efficiency (speedup divided by the core count
        # actually available, capped at the worker count) at the widest
        # configuration: it is ~1.0 on any machine when the executor
        # scales, whereas raw speedup collapses to ~1.0 on a 1-core CI
        # runner no matter how good the executor is.
        widest = max(scaling, key=lambda rec: rec["workers"])
        metrics["parallel_validation.efficiency.max_workers"] = (
            widest.get("parallel_efficiency")
        )
    memo = doc.get("shard_map_memo")
    if isinstance(memo, dict) and memo.get("memo_speedup") is not None:
        # The memo wins by orders of magnitude when hot (hash lookup vs a
        # recursive trie descent); cap the guarded value so baseline
        # machines with extreme ratios don't demand the same from CI —
        # any value >= the cap means "memo is working".
        metrics["parallel_validation.memo_speedup.capped"] = min(
            10.0, memo["memo_speedup"]
        )
    return metrics


# metric-name prefix -> direction; "down" means a larger value is a
# regression (dips), everything else regresses when it drops.
LOWER_IS_BETTER = ("reshard.throughput_dip",)
# Raw-rate metrics compared only under WAKU_BENCH_STRICT_ABSOLUTE=1.
ABSOLUTE_ONLY = (".msgs_per_sec", "members_per_sec")
# Absolute ceilings checked against the FRESH value alone — not against
# the baseline, and not widened by the tolerance. The telemetry-overhead
# fractions carry the ISSUE 7 acceptance bound: instrumentation may cost
# at most 3% throughput.
HARD_CAPS = {
    "telemetry_overhead.on_fraction": 0.03,
    "telemetry_overhead.tracing_fraction": 0.03,
    "telemetry_overhead.recorder_fraction": 0.03,
    "operator_loop.quota_double_deliveries": 0.0,
    # Full-sampling propagation tracing rides the same 3% budget as the
    # rest of the telemetry plane.
    "propagation.tracing_fraction": 0.03,
}

EXTRACTORS = {
    "BENCH_batch_validation.json": batch_validation_metrics,
    "BENCH_sharding.json": sharding_metrics,
    "BENCH_reshard.json": reshard_metrics,
    "BENCH_parallel_validation.json": parallel_validation_metrics,
    "BENCH_telemetry_overhead.json": telemetry_overhead_metrics,
    "BENCH_operator_loop.json": operator_loop_metrics,
    "BENCH_propagation.json": propagation_metrics,
    "BENCH_membership_scale.json": membership_scale_metrics,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh_dir", help="directory with fresh BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), ".."),
        help="directory with committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("WAKU_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional regression (default 0.25)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="BENCH_x.json",
        help="guard only these bench files (repeatable) — for CI lanes "
        "that run a single bench instead of the full smoke sweep",
    )
    args = parser.parse_args()

    if os.environ.get("WAKU_BENCH_GUARD", "").lower() in ("off", "0", "skip"):
        print("bench regression guard: WAKU_BENCH_GUARD=off, skipping")
        return 0

    strict_absolute = os.environ.get("WAKU_BENCH_STRICT_ABSOLUTE") == "1"
    failures = []
    compared = 0
    for name, extract in sorted(EXTRACTORS.items()):
        if args.only and name not in args.only:
            continue
        baseline_doc = load(os.path.join(args.baseline_dir, name))
        fresh_doc = load(os.path.join(args.fresh_dir, name))
        if baseline_doc is None:
            print("  %-34s no committed baseline, skipped" % name)
            continue
        if fresh_doc is None:
            failures.append("%s: fresh run produced no JSON" % name)
            continue
        baseline = extract(baseline_doc)
        fresh = extract(fresh_doc)
        for metric, base_value in sorted(baseline.items()):
            if base_value is None or metric not in fresh:
                continue
            if not strict_absolute and any(
                tag in metric for tag in ABSOLUTE_ONLY
            ):
                continue
            fresh_value = fresh[metric]
            compared += 1
            if metric in HARD_CAPS:
                cap = HARD_CAPS[metric]
                regressed = fresh_value > cap
                verdict = "cap %.3f" % cap
                status = "OVER CAP" if regressed else "ok"
                print(
                    "  %-44s base %10.3f  fresh %10.3f  %s (%s)"
                    % (metric, base_value, fresh_value, verdict, status)
                )
                if regressed:
                    failures.append(
                        "%s: %.4f exceeds the %.2f hard cap"
                        % (metric, fresh_value, cap)
                    )
                continue
            if metric.startswith(LOWER_IS_BETTER):
                # A dip may grow by the tolerance in absolute terms
                # (dips near 0 make relative comparison meaningless).
                regressed = fresh_value > base_value + args.tolerance
                delta = fresh_value - base_value
                verdict = "+%.3f dip" % delta
            else:
                floor = base_value * (1.0 - args.tolerance)
                regressed = fresh_value < floor
                delta = (
                    (fresh_value - base_value) / base_value
                    if base_value
                    else 0.0
                )
                verdict = "%+.1f%%" % (100.0 * delta)
            status = "REGRESSED" if regressed else "ok"
            print(
                "  %-44s base %10.3f  fresh %10.3f  %s (%s)"
                % (metric, base_value, fresh_value, verdict, status)
            )
            if regressed:
                failures.append(
                    "%s: %.3f -> %.3f (allowed %.0f%%)"
                    % (metric, base_value, fresh_value, 100 * args.tolerance)
                )

    if compared == 0:
        failures.append("no metrics compared — wrong directories?")
    if failures:
        print("\nbench regression guard FAILED:")
        for failure in failures:
            print("  * " + failure)
        print(
            "(intentional trade-off? refresh the committed BENCH_*.json "
            "baselines, or set WAKU_BENCH_GUARD=off / raise "
            "WAKU_BENCH_TOLERANCE)"
        )
        return 1
    print("bench regression guard passed (%d metrics)" % compared)
    return 0


if __name__ == "__main__":
    sys.exit(main())
