#!/usr/bin/env bash
# Tier-1 test suite under sanitizers.
#
# Default flavor builds into build-asan/ with
# -DWAKU_SANITIZE=address,undefined and runs the full ctest suite. Memory
# errors in the persistence layer (file IO, torn-tail truncation, byte
# juggling) are exactly the class of bug a sanitizer catches and a green
# test run hides.
#
# The "thread" flavor builds into build-tsan/ with -DWAKU_SANITIZE=thread
# and runs the concurrency-touching suites (the multithreaded validation
# executor, striped nullifier log, seqlock'd root window, and shard-map
# memo): data races are invisible to ASan and to an unsanitized run, and
# TSan over the full suite is needlessly slow — the single-threaded
# persistence suites cannot race.
#
# Usage: scripts/run_tier1.sh [sanitizer-spec]
#   sanitizer-spec  passed to -fsanitize= (default: address,undefined);
#                   "thread" selects the TSan flavor described above
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SAN="${1:-address,undefined}"

if [ "$SAN" = "thread" ]; then
  BUILD="$ROOT/build-tsan"
else
  BUILD="$ROOT/build-asan"
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWAKU_SANITIZE="$SAN" >/dev/null
cmake --build "$BUILD" -j"$(nproc)"

cd "$BUILD"

if [ "$SAN" = "thread" ]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  # The suites that actually spin up threads or exercise the shared
  # validation state: the executor/striped-log/partition-invariance
  # suite, the sharding suite (shard-map memo, per-shard pipelines), and
  # the observability suite (sharded counters / lock-free histograms /
  # trace collector recorded from concurrent workers).
  registered="$(ctest -N)"
  for suite in test_parallel_validation test_sharding test_obs; do
    if ! grep -q "$suite" <<<"$registered"; then
      echo "error: $suite missing from the ctest suite" >&2
      exit 1
    fi
  done
  ctest --output-on-failure -j"$(nproc)" \
    -R '^(test_parallel_validation|test_sharding|test_obs)$'
  echo "concurrency suites passed under -fsanitize=thread"
  exit 0
fi

# halt_on_error so ctest reports sanitizer findings as failures; UBSan
# prints stacks for every hit.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

# The adversarial scenario, sharding, and live-reshard suites must be
# part of every sanitized run — the sim layer drives long event cascades
# through every subsystem, the sharded relay adds per-shard state
# machines plus shard-tagged WAL recovery, and the reshard engine moves
# pipelines between validator containers mid-flight; exactly where
# lifetime bugs hide. Fail loudly if any ever drops out of the glob.
# (capture first: `ctest -N | grep -q` would trip pipefail via SIGPIPE)
registered="$(ctest -N)"
for suite in test_scenarios test_sharding test_reshard; do
  if ! grep -q "$suite" <<<"$registered"; then
    echo "error: $suite missing from the ctest suite" >&2
    exit 1
  fi
done
ctest --output-on-failure -j"$(nproc)"
echo "tier-1 suite (incl. adversarial scenarios + sharding + live reshard) passed under -fsanitize=$SAN"
