#!/usr/bin/env python3
"""Prometheus exposition linter for the in-node telemetry.

Usage:
    ./build/example_metrics_dump | scripts/check_metrics_format.py
    scripts/check_metrics_format.py metrics.txt

Validates the text format WakuRlnRelayNode::metrics_text() emits
(src/obs/telemetry.cpp PrometheusWriter + registry exposition):

  * every sample line parses as `name{labels} value`;
  * metric and label names are legal Prometheus identifiers;
  * every family has exactly one # HELP and one # TYPE, BEFORE its
    samples, and no family is declared twice (duplicate detection —
    the ad-hoc snapshot section and the registry section must stay
    disjoint);
  * samples appear only under a declared family, and histogram series
    use only the _bucket/_sum/_count suffixes;
  * counter families end in _total (or are histogram components);
  * histogram bucket `le` values are sorted and cumulative counts are
    monotone, closing with le="+Inf" == _count, per labelset;
  * values parse as numbers (integers or %g floats).

Only the Python standard library is used (CI runs it with no venv).
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(sample_name, types):
    """The declared family a sample line belongs to."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def parse_value(raw):
    if raw == "+Inf":
        return float("inf")
    return float(raw)


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    errors = []
    helps = {}
    types = {}
    samples_seen = 0
    # (family, labels-without-le) -> list of (le, cumulative) in order.
    buckets = {}
    # (family+suffix, labels) duplicates.
    seen_series = set()

    for lineno, line in enumerate(lines, 1):
        def err(msg):
            errors.append("line %d: %s (%r)" % (lineno, msg, line[:120]))

        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                err("HELP without text")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                err("illegal family name in HELP")
            if name in helps:
                err("duplicate # HELP for family " + name)
            helps[name] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                err("malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram"):
                err("unknown metric type " + kind)
            if name in types:
                err("duplicate # TYPE for family " + name)
            if name not in helps:
                err("TYPE before HELP for family " + name)
            types[name] = kind
            continue
        if line.startswith("#"):
            err("unrecognized comment line")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err("unparsable sample line")
            continue
        sample_name, _, label_blob, raw_value = m.groups()
        samples_seen += 1

        family = family_of(sample_name, types)
        if family is None:
            err("sample for undeclared family " + sample_name)
            continue
        kind = types[family]
        if kind == "counter" and not family.endswith("_total"):
            err("counter family missing _total suffix: " + family)
        if kind == "histogram" and sample_name == family:
            err("bare sample for histogram family " + family)
        if kind != "histogram" and sample_name != family:
            err("suffixed sample for non-histogram family " + family)

        labels = {}
        if label_blob:
            consumed = LABEL_RE.sub("", label_blob).replace(",", "").strip()
            if consumed:
                err("malformed label blob")
                continue
            for lm in LABEL_RE.finditer(label_blob):
                key, value = lm.group(1), lm.group(2)
                if key in labels:
                    err("duplicate label " + key)
                labels[key] = value

        try:
            value = parse_value(raw_value)
        except ValueError:
            err("unparsable value " + raw_value)
            continue
        if kind in ("counter", "histogram") and value < 0:
            err("negative value in monotone family")

        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            err("duplicate series " + sample_name + str(sorted(labels.items())))
        seen_series.add(series_key)

        if kind == "histogram" and sample_name.endswith("_bucket"):
            if "le" not in labels:
                err("_bucket sample without le label")
                continue
            le = parse_value(labels["le"])
            rest = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            buckets.setdefault((family, rest), []).append((lineno, le, value))
        elif kind == "histogram" and sample_name.endswith("_count"):
            rest = tuple(sorted(labels.items()))
            buckets.setdefault((family, rest), []).append(
                (lineno, None, value)
            )

    # Histogram structure: per labelset, le ascending, counts monotone,
    # +Inf present and equal to _count.
    for (family, rest), entries in sorted(buckets.items()):
        les = [(le, v) for (_, le, v) in entries if le is not None]
        counts = [v for (_, le, v) in entries if le is None]
        where = "%s{%s}" % (family, ",".join("%s=%s" % kv for kv in rest))
        if not les:
            errors.append("histogram %s has _count but no buckets" % where)
            continue
        for i in range(1, len(les)):
            if les[i][0] <= les[i - 1][0]:
                errors.append("histogram %s: le not ascending" % where)
            if les[i][1] < les[i - 1][1]:
                errors.append("histogram %s: cumulative count drops" % where)
        if les[-1][0] != float("inf"):
            errors.append("histogram %s: missing le=\"+Inf\"" % where)
        if counts and les[-1][1] != counts[0]:
            errors.append(
                "histogram %s: +Inf bucket %.0f != _count %.0f"
                % (where, les[-1][1], counts[0])
            )

    for name in types:
        if name not in helps:
            errors.append("family %s has TYPE but no HELP" % name)

    if samples_seen == 0:
        errors.append("no samples found — empty exposition?")

    if errors:
        print("metrics format check FAILED:")
        for e in errors:
            print("  * " + e)
        return 1
    print(
        "metrics format check passed: %d families, %d samples"
        % (len(types), samples_seen)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
