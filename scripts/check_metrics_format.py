#!/usr/bin/env python3
"""Prometheus exposition linter for the in-node telemetry.

Usage:
    ./build/example_metrics_dump | scripts/check_metrics_format.py
    scripts/check_metrics_format.py metrics.txt
    ./build/example_metrics_dump --json | scripts/check_metrics_format.py --json
    ./build/example_metrics_dump --fleet | scripts/check_metrics_format.py --json
    ./build/example_metrics_dump --postmortem | \\
        scripts/check_metrics_format.py --json

Validates the text format WakuRlnRelayNode::metrics_text() emits
(src/obs/telemetry.cpp PrometheusWriter + registry exposition):

  * every sample line parses as `name{labels} value`;
  * metric and label names are legal Prometheus identifiers;
  * every family has exactly one # HELP and one # TYPE, BEFORE its
    samples, and no family is declared twice (duplicate detection —
    the ad-hoc snapshot section and the registry section must stay
    disjoint);
  * samples appear only under a declared family, and histogram series
    use only the _bucket/_sum/_count suffixes;
  * counter families end in _total (or are histogram components);
  * histogram bucket `le` values are sorted and cumulative counts are
    monotone, closing with le="+Inf" == _count, per labelset;
  * every histogram labelset carries a _sum series (dashboards compute
    rates from _sum/_count; a bucket-only family breaks them);
  * values parse as numbers (integers or %g floats).

With --json the input is instead one of the structured dumps — a
metrics_json() object, a fleet timeline array (FleetAggregator
timeline_json / the verdict's fleet_timeline), a flight-recorder
postmortem, a propagation summary (the verdict/campaign "propagation"
embed), or a Chrome trace-event export — recognized by shape and
checked structurally (required keys, ratio ranges, ring/tree
accounting).

Only the Python standard library is used (CI runs it with no venv).
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(sample_name, types):
    """The declared family a sample line belongs to."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def parse_value(raw):
    if raw == "+Inf":
        return float("inf")
    return float(raw)


def check_fleet_timeline(rows, errors, where="fleet timeline"):
    """One FleetEpochSeries row per epoch, ratios in range, epochs
    ascending."""
    required = (
        "epoch", "nodes_reporting", "honest_delivery_ratio",
        "containment_ratio", "p95_spread_ms", "total_log_entries",
    )
    prev_epoch = None
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append("%s row %d: not an object" % (where, i))
            continue
        for key in required:
            if key not in row:
                errors.append("%s row %d: missing %s" % (where, i, key))
        for ratio in ("honest_delivery_ratio", "containment_ratio"):
            value = row.get(ratio)
            if value is not None and not 0.0 <= value <= 1.0:
                errors.append(
                    "%s row %d: %s=%r out of [0,1]" % (where, i, ratio, value)
                )
        epoch = row.get("epoch")
        if prev_epoch is not None and epoch is not None and epoch <= prev_epoch:
            errors.append("%s row %d: epochs not ascending" % (where, i))
        prev_epoch = epoch


def check_postmortem(doc, errors):
    """FlightRecorder::postmortem_json: ring accounting must be coherent."""
    for key in ("reason", "recorded", "evicted", "events"):
        if key not in doc:
            errors.append("postmortem: missing %s" % key)
    events = doc.get("events", [])
    if not isinstance(events, list):
        errors.append("postmortem: events is not an array")
        events = []
    recorded = doc.get("recorded", 0)
    evicted = doc.get("evicted", 0)
    if recorded - evicted != len(events):
        errors.append(
            "postmortem: recorded %r - evicted %r != %d ring events"
            % (recorded, evicted, len(events))
        )
    for i, ev in enumerate(events):
        for key in ("at_ns", "epoch", "kind", "detail"):
            if not isinstance(ev, dict) or key not in ev:
                errors.append("postmortem event %d: missing %s" % (i, key))


def check_propagation_summary(doc, errors):
    """PropagationSummary::to_json (the campaign/verdict "propagation"
    embed): tree accounting must balance and ratios stay in range."""
    required = (
        "trees", "complete_trees", "incomplete_trees", "rejected_trees",
        "adversary_trees", "propagation_p50_ns", "propagation_p95_ns",
        "propagation_p99_ns", "redundancy_ratio", "reachability",
        "hop_histogram",
    )
    for key in required:
        if key not in doc:
            errors.append("propagation summary: missing %s" % key)
    parts = (
        doc.get("complete_trees", 0) + doc.get("incomplete_trees", 0)
        + doc.get("rejected_trees", 0) + doc.get("adversary_trees", 0)
    )
    if doc.get("trees") is not None and doc["trees"] != parts:
        errors.append(
            "propagation summary: trees %r != complete+incomplete+"
            "rejected+adversary %d" % (doc["trees"], parts)
        )
    reach = doc.get("reachability")
    if reach is not None and not 0.0 <= reach <= 1.0:
        errors.append(
            "propagation summary: reachability %r out of [0,1]" % reach
        )
    if not isinstance(doc.get("hop_histogram", []), list):
        errors.append("propagation summary: hop_histogram is not an array")
    p50, p95, p99 = (
        doc.get("propagation_p50_ns"), doc.get("propagation_p95_ns"),
        doc.get("propagation_p99_ns"),
    )
    if None not in (p50, p95, p99) and not p50 <= p95 <= p99:
        errors.append("propagation summary: quantiles not monotone")


def check_chrome_trace(doc, errors):
    """PropagationAssembler::chrome_trace_json: loadable by
    chrome://tracing / Perfetto — traceEvents with legal phases, spans
    carrying ts/dur/pid."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("chrome trace: traceEvents is not an array")
        return
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append("chrome trace event %d: not an object" % i)
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            errors.append("chrome trace event %d: unexpected ph %r" % (i, ph))
            continue
        required = ("name", "pid") if ph == "M" else (
            "name", "pid", "tid", "ts", "dur"
        )
        for key in required:
            if key not in ev:
                errors.append(
                    "chrome trace event %d (%s): missing %s" % (i, ph, key)
                )
        if ph == "X" and ev.get("dur", 0) < 0:
            errors.append("chrome trace event %d: negative dur" % i)


def check_membership_scale(doc, errors):
    """BENCH_membership_scale.json (bench/bench_membership_scale.cpp):
    sections present, member counts ascending, ratios coherent."""
    for key in ("config", "registration", "witness", "bootstrap",
                "delta_checkpoint"):
        if key not in doc:
            errors.append("membership scale: missing section %s" % key)
    for section in ("registration", "witness", "bootstrap"):
        rows = doc.get(section, [])
        if not isinstance(rows, list) or not rows:
            errors.append(
                "membership scale: %s is not a non-empty array" % section
            )
            continue
        prev = None
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or "members" not in row:
                errors.append(
                    "membership scale: %s row %d missing members"
                    % (section, i)
                )
                continue
            if prev is not None and row["members"] <= prev:
                errors.append(
                    "membership scale: %s member counts not ascending"
                    % section
                )
            prev = row["members"]
    for i, row in enumerate(doc.get("registration", [])):
        speedup = row.get("batch_speedup") if isinstance(row, dict) else None
        if speedup is None or speedup <= 0:
            errors.append(
                "membership scale: registration row %d has no positive "
                "batch_speedup" % i
            )
    delta = doc.get("delta_checkpoint", {})
    if isinstance(delta, dict):
        for key in ("full_bytes", "delta_bytes", "size_ratio"):
            if key not in delta:
                errors.append("membership scale: delta_checkpoint missing %s"
                              % key)
        full = delta.get("full_bytes")
        small = delta.get("delta_bytes")
        ratio = delta.get("size_ratio")
        if None not in (full, small, ratio) and small:
            if abs(ratio - full / small) > 0.05 * ratio:
                errors.append(
                    "membership scale: size_ratio %r inconsistent with "
                    "full_bytes/delta_bytes %r/%r" % (ratio, full, small)
                )
    else:
        errors.append("membership scale: delta_checkpoint is not an object")


def check_metrics_json(doc, errors):
    """WakuRlnRelayNode::metrics_json: every section present, the embedded
    self-fleet timeline well-formed."""
    for key in ("node", "pipeline", "operator", "fleet", "registry"):
        if key not in doc:
            errors.append("metrics_json: missing section %s" % key)
    operator = doc.get("operator", {})
    for key in ("decisions", "flight_recorded", "anomalies_fired"):
        if key not in operator:
            errors.append("metrics_json: operator section missing %s" % key)
    fleet = doc.get("fleet", [])
    if not isinstance(fleet, list):
        errors.append("metrics_json: fleet is not a timeline array")
    else:
        check_fleet_timeline(fleet, errors, where="metrics_json fleet")


def json_main(argv):
    if argv:
        with open(argv[0], "r", encoding="utf-8") as f:
            raw = f.read()
    else:
        raw = sys.stdin.read()
    errors = []
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        print("metrics json check FAILED:\n  * not valid JSON: %s" % exc)
        return 1

    if isinstance(doc, list):
        shape = "fleet timeline (%d rows)" % len(doc)
        check_fleet_timeline(doc, errors)
    elif isinstance(doc, dict) and "events" in doc:
        shape = "postmortem (%d events)" % len(doc.get("events") or [])
        check_postmortem(doc, errors)
    elif isinstance(doc, dict) and "registry" in doc:
        shape = "metrics_json (%d sections)" % len(doc)
        check_metrics_json(doc, errors)
    elif isinstance(doc, dict) and "traceEvents" in doc:
        shape = "chrome trace (%d events)" % len(doc.get("traceEvents") or [])
        check_chrome_trace(doc, errors)
    elif isinstance(doc, dict) and "hop_histogram" in doc:
        shape = "propagation summary (%d trees)" % doc.get("trees", 0)
        check_propagation_summary(doc, errors)
    elif isinstance(doc, dict) and "delta_checkpoint" in doc:
        shape = "membership scale bench (%d sizes)" % len(
            doc.get("registration") or []
        )
        check_membership_scale(doc, errors)
    else:
        errors.append("unrecognized JSON shape (not a timeline, "
                      "postmortem, metrics_json, chrome trace, "
                      "propagation summary, or membership scale dump)")
        shape = "?"

    if errors:
        print("metrics json check FAILED:")
        for e in errors:
            print("  * " + e)
        return 1
    print("metrics json check passed: %s" % shape)
    return 0


def main():
    argv = sys.argv[1:]
    if argv and argv[0] == "--json":
        return json_main(argv[1:])
    if argv:
        with open(argv[0], "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    errors = []
    helps = {}
    types = {}
    samples_seen = 0
    # (family, labels-without-le) -> list of (le, cumulative) in order.
    buckets = {}
    # (family, labels) that emitted a _sum series.
    sums = set()
    # (family+suffix, labels) duplicates.
    seen_series = set()

    for lineno, line in enumerate(lines, 1):
        def err(msg):
            errors.append("line %d: %s (%r)" % (lineno, msg, line[:120]))

        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                err("HELP without text")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                err("illegal family name in HELP")
            if name in helps:
                err("duplicate # HELP for family " + name)
            helps[name] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                err("malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram"):
                err("unknown metric type " + kind)
            if name in types:
                err("duplicate # TYPE for family " + name)
            if name not in helps:
                err("TYPE before HELP for family " + name)
            types[name] = kind
            continue
        if line.startswith("#"):
            err("unrecognized comment line")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err("unparsable sample line")
            continue
        sample_name, _, label_blob, raw_value = m.groups()
        samples_seen += 1

        family = family_of(sample_name, types)
        if family is None:
            err("sample for undeclared family " + sample_name)
            continue
        kind = types[family]
        if kind == "counter" and not family.endswith("_total"):
            err("counter family missing _total suffix: " + family)
        if kind == "histogram" and sample_name == family:
            err("bare sample for histogram family " + family)
        if kind != "histogram" and sample_name != family:
            err("suffixed sample for non-histogram family " + family)

        labels = {}
        if label_blob:
            consumed = LABEL_RE.sub("", label_blob).replace(",", "").strip()
            if consumed:
                err("malformed label blob")
                continue
            for lm in LABEL_RE.finditer(label_blob):
                key, value = lm.group(1), lm.group(2)
                if key in labels:
                    err("duplicate label " + key)
                labels[key] = value

        try:
            value = parse_value(raw_value)
        except ValueError:
            err("unparsable value " + raw_value)
            continue
        if kind in ("counter", "histogram") and value < 0:
            err("negative value in monotone family")

        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            err("duplicate series " + sample_name + str(sorted(labels.items())))
        seen_series.add(series_key)

        if kind == "histogram" and sample_name.endswith("_bucket"):
            if "le" not in labels:
                err("_bucket sample without le label")
                continue
            le = parse_value(labels["le"])
            rest = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            buckets.setdefault((family, rest), []).append((lineno, le, value))
        elif kind == "histogram" and sample_name.endswith("_count"):
            rest = tuple(sorted(labels.items()))
            buckets.setdefault((family, rest), []).append(
                (lineno, None, value)
            )
        elif kind == "histogram" and sample_name.endswith("_sum"):
            sums.add((family, tuple(sorted(labels.items()))))

    # Histogram structure: per labelset, le ascending, counts monotone,
    # +Inf present and equal to _count.
    for (family, rest), entries in sorted(buckets.items()):
        les = [(le, v) for (_, le, v) in entries if le is not None]
        counts = [v for (_, le, v) in entries if le is None]
        where = "%s{%s}" % (family, ",".join("%s=%s" % kv for kv in rest))
        if not les:
            errors.append("histogram %s has _count but no buckets" % where)
            continue
        for i in range(1, len(les)):
            if les[i][0] <= les[i - 1][0]:
                errors.append("histogram %s: le not ascending" % where)
            if les[i][1] < les[i - 1][1]:
                errors.append("histogram %s: cumulative count drops" % where)
        if les[-1][0] != float("inf"):
            errors.append("histogram %s: missing le=\"+Inf\"" % where)
        if counts and les[-1][1] != counts[0]:
            errors.append(
                "histogram %s: +Inf bucket %.0f != _count %.0f"
                % (where, les[-1][1], counts[0])
            )
        if (family, rest) not in sums:
            errors.append("histogram %s: missing _sum series" % where)

    for name in types:
        if name not in helps:
            errors.append("family %s has TYPE but no HELP" % name)

    if samples_seen == 0:
        errors.append("no samples found — empty exposition?")

    if errors:
        print("metrics format check FAILED:")
        for e in errors:
            print("  * " + e)
        return 1
    print(
        "metrics format check passed: %d families, %d samples"
        % (len(types), samples_seen)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
